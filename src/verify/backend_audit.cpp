#include "verify/backend_audit.h"

#include <limits>
#include <string>
#include <vector>

#include "graph/planarity.h"
#include "graph/shortest_paths.h"
#include "graph/union_find.h"

namespace geospanner::verify {

using graph::GeometricGraph;
using graph::NodeId;

namespace {

void add_witness(AuditReport& report, const AuditOptions& options, Witness w) {
    report.pass = false;
    if (report.witnesses.size() < options.max_witnesses) {
        report.witnesses.push_back(std::move(w));
    }
}

Witness pair_witness(NodeId u, NodeId v, double measured, double bound,
                     std::string detail) {
    Witness w;
    w.nodes.push_back(u);
    w.nodes.push_back(v);
    w.measured = measured;
    w.bound = bound;
    w.detail = std::move(detail);
    return w;
}

double effective_radius(const GeometricGraph& udg, const AuditOptions& options) {
    if (options.radius > 0.0) return options.radius;
    double rmax = 0.0;
    for (const auto& [u, v] : udg.edges()) {
        rmax = std::max(rmax, udg.edge_length(u, v));
    }
    return rmax;
}

AuditReport make_report(std::string check, std::string claim) {
    AuditReport report;
    report.check = std::move(check);
    report.lemma = std::move(claim);
    return report;
}

AuditReport check_subgraph(const GeometricGraph& udg, const GeometricGraph& spanner,
                           const AuditOptions& options) {
    AuditReport report = make_report("backend_subgraph", "claim: spanner subset of UDG");
    if (spanner.node_count() != udg.node_count()) {
        Witness w;
        w.measured = static_cast<double>(spanner.node_count());
        w.bound = static_cast<double>(udg.node_count());
        w.detail = "spanner has " + std::to_string(spanner.node_count()) +
                   " nodes, UDG has " + std::to_string(udg.node_count());
        add_witness(report, options, std::move(w));
        return report;
    }
    for (NodeId v = 0; v < spanner.node_count(); ++v) {
        if (spanner.point(v) != udg.point(v)) {
            Witness w;
            w.nodes.push_back(v);
            w.detail = "node " + std::to_string(v) + " sits at a different point "
                       "in the spanner than in the UDG";
            add_witness(report, options, std::move(w));
        }
    }
    for (const auto& [u, v] : spanner.edges()) {
        if (!udg.has_edge(u, v)) {
            add_witness(report, options,
                        pair_witness(u, v, spanner.edge_length(u, v), 0.0,
                                     "spanner edge " + std::to_string(u) + "-" +
                                         std::to_string(v) + " is not a UDG edge"));
        }
    }
    return report;
}

AuditReport check_connectivity(const GeometricGraph& udg, const GeometricGraph& spanner,
                               const AuditOptions& options) {
    AuditReport report =
        make_report("backend_connectivity", "claim: UDG connectivity preserved");
    graph::UnionFind udg_uf(udg.node_count());
    for (const auto& [u, v] : udg.edges()) udg_uf.unite(u, v);
    graph::UnionFind sp_uf(spanner.node_count());
    for (const auto& [u, v] : spanner.edges()) sp_uf.unite(u, v);
    // Representative node per UDG component; every other member must
    // share its spanner component.
    std::vector<NodeId> rep(udg.node_count(), graph::kInvalidNode);
    for (NodeId v = 0; v < udg.node_count(); ++v) {
        NodeId& r = rep[udg_uf.find(v)];
        if (r == graph::kInvalidNode) {
            r = v;
            continue;
        }
        if (sp_uf.find(v) != sp_uf.find(r)) {
            add_witness(report, options,
                        pair_witness(r, v, 0.0, 0.0,
                                     "spanner disconnects nodes " + std::to_string(r) +
                                         " and " + std::to_string(v) +
                                         ", connected in the UDG"));
        }
    }
    return report;
}

AuditReport check_planarity(const GeometricGraph& spanner, const AuditOptions& options) {
    AuditReport report = make_report("backend_planarity", "claim: plane embedding");
    const auto crossings =
        graph::crossing_edge_pairs(spanner, options.max_witnesses);
    for (const auto& [e1, e2] : crossings) {
        Witness w;
        w.edges.push_back(e1);
        w.edges.push_back(e2);
        w.detail = "edges " + std::to_string(e1.first) + "-" + std::to_string(e1.second) +
                   " and " + std::to_string(e2.first) + "-" + std::to_string(e2.second) +
                   " properly cross";
        add_witness(report, options, std::move(w));
    }
    return report;
}

AuditReport check_degree(const GeometricGraph& spanner, std::size_t cap,
                         const AuditOptions& options) {
    AuditReport report = make_report(
        "backend_degree", "claim: max degree <= " + std::to_string(cap));
    for (NodeId v = 0; v < spanner.node_count(); ++v) {
        if (spanner.degree(v) > cap) {
            Witness w;
            w.nodes.push_back(v);
            w.measured = static_cast<double>(spanner.degree(v));
            w.bound = static_cast<double>(cap);
            w.detail = "degree of node " + std::to_string(v) + " is " +
                       std::to_string(spanner.degree(v)) + " > " + std::to_string(cap);
            add_witness(report, options, std::move(w));
        }
    }
    return report;
}

AuditReport check_hop_stretch(const GeometricGraph& udg, const GeometricGraph& spanner,
                              const BackendClaims& claims, const AuditOptions& options) {
    AuditReport report = make_report("backend_hop_stretch",
                                     "claim: hops <= " +
                                         std::to_string(claims.hop_stretch_factor) +
                                         "h + " +
                                         std::to_string(claims.hop_stretch_offset));
    const auto n = static_cast<NodeId>(udg.node_count());
    for (NodeId s = 0; s < n; ++s) {
        const auto base = graph::bfs_hops(udg, s);
        const auto topo = graph::bfs_hops(spanner, s);
        for (NodeId t = s + 1; t < n; ++t) {
            if (base[t] == graph::kUnreachableHops) continue;
            const double bound =
                claims.hop_stretch_factor * base[t] + claims.hop_stretch_offset;
            if (topo[t] == graph::kUnreachableHops ||
                static_cast<double>(topo[t]) > bound) {
                const double measured = topo[t] == graph::kUnreachableHops
                                            ? std::numeric_limits<double>::infinity()
                                            : static_cast<double>(topo[t]);
                add_witness(report, options,
                            pair_witness(s, t, measured, bound,
                                         "hop distance " + std::to_string(s) + "->" +
                                             std::to_string(t) +
                                             " exceeds the claimed bound"));
            }
        }
    }
    return report;
}

AuditReport check_length_stretch(const GeometricGraph& udg, const GeometricGraph& spanner,
                                 const BackendClaims& claims,
                                 const AuditOptions& options) {
    AuditReport report = make_report(
        "backend_length_stretch",
        "claim: far-pair length stretch <= " + std::to_string(claims.max_length_stretch));
    const auto n = static_cast<NodeId>(udg.node_count());
    const double radius = effective_radius(udg, options);
    for (NodeId s = 0; s < n; ++s) {
        const auto base = graph::dijkstra_lengths(udg, s);
        const auto topo = graph::dijkstra_lengths(spanner, s);
        for (NodeId t = s + 1; t < n; ++t) {
            if (base[t] == graph::kUnreachableLength || base[t] <= 0.0) continue;
            if (geom::distance(udg.point(s), udg.point(t)) <= radius) continue;
            if (topo[t] > claims.max_length_stretch * base[t]) {
                const double measured = topo[t] == graph::kUnreachableLength
                                            ? std::numeric_limits<double>::infinity()
                                            : topo[t] / base[t];
                add_witness(report, options,
                            pair_witness(s, t, measured, claims.max_length_stretch,
                                         "length stretch of pair " + std::to_string(s) +
                                             "," + std::to_string(t) +
                                             " exceeds the claimed bound"));
            }
        }
    }
    return report;
}

}  // namespace

StageAudit audit_backend(const GeometricGraph& udg, const GeometricGraph& spanner,
                         const BackendClaims& claims, const AuditOptions& options) {
    StageAudit stage;
    stage.stage = "backend";
    if (claims.subgraph_of_udg) {
        stage.reports.push_back(check_subgraph(udg, spanner, options));
        // The remaining checks index both graphs with shared node ids;
        // a node-count mismatch would make them UB, so stop here.
        if (spanner.node_count() != udg.node_count()) return stage;
    }
    if (claims.connected) {
        stage.reports.push_back(check_connectivity(udg, spanner, options));
    }
    if (claims.plane) {
        stage.reports.push_back(check_planarity(spanner, options));
    }
    if (claims.max_degree > 0) {
        stage.reports.push_back(check_degree(spanner, claims.max_degree, options));
    }
    if (claims.hop_stretch_factor > 0.0) {
        stage.reports.push_back(check_hop_stretch(udg, spanner, claims, options));
    }
    if (claims.max_length_stretch > 0.0) {
        stage.reports.push_back(check_length_stretch(udg, spanner, claims, options));
    }
    return stage;
}

}  // namespace geospanner::verify
