// Degraded-mode guarantee certificates: which Lemma 1–8 claims survive
// when the radio model or the node population degrades, and with what
// relaxed constants.
//
// The paper proves Lemmas 1–8 for a fault-free unit disk graph. Under a
// quasi-UDG with per-link radii in [α·r, r] (fault::QuasiUdgModel) and
// after crashes remove nodes, the claims split three ways:
//   * structural/graph-theoretic claims (domination, messages, hop
//     stretch, connectivity preservation) still hold w.r.t. whatever
//     communication graph actually exists — the proofs never used the
//     disk geometry;
//   * geometric packing claims (Lemmas 1, 2, 4, 6) survive with
//     constants relaxed by powers of 1/α — MIS independence still
//     separates dominators, just only by α·r;
//   * the planarity claim (Lemma 7) is only guaranteed at α = 1: with
//     heterogeneous link radii, the local Delaunay argument that
//     crossing edges are locally detectable breaks down.
// check_degraded_guarantees runs every checker against the degraded
// graph with the relaxed constants and returns one claim per lemma
// group, marked `claimed` when the theory still promises it (so a
// failed unclaimed check is advisory, not a defect).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "verify/audit.h"

namespace geospanner::verify {

/// The active fault conditions a certificate is stated under.
struct DegradedConditions {
    double alpha = 1.0;       ///< quasi-UDG link-radius floor factor (1 = exact UDG)
    std::size_t crashed = 0;  ///< nodes currently failed (isolated / removed)
};

/// One lemma-group claim under the conditions: whether the theory still
/// claims it, the (possibly relaxed) bound in words, and the checked
/// certificate. An unclaimed claim's report is advisory.
struct DegradedClaim {
    std::string lemma;
    bool claimed = false;
    std::string statement;
    AuditReport report;
};

/// The full degraded-mode certificate. pass() ignores advisory
/// (unclaimed) reports: the service is healthy when everything the
/// theory still promises actually holds.
struct DegradedAudit {
    DegradedConditions conditions;
    std::vector<DegradedClaim> claims;

    [[nodiscard]] bool pass() const;
    /// One line per claim: CLAIMED/ADVISORY, the statement, PASS/FAIL.
    [[nodiscard]] std::string summary() const;
};

/// Audits `backbone` (built over the degraded `udg`) against the
/// Lemma 1–8 claims that survive under `conditions`. `base` supplies
/// the fault-free caps; the relaxations are derived from it:
///   Lemma 1+2  claimed, caps (2/α+1)² and (2k/α+1)²  (area packing)
///   Lemma 3    claimed, unchanged (protocol locality is model-free)
///   Lemma 4    claimed, degree caps × ⌈1/α²⌉
///   Lemma 5+6  claimed; hop bound unchanged, length stretch / α
///   Lemma 7    claimed only at α = 1 (advisory below)
///   Lemma 8    claimed, unchanged (component-wise, crash-safe)
[[nodiscard]] DegradedAudit check_degraded_guarantees(
    const graph::GeometricGraph& udg, const core::Backbone& backbone,
    const DegradedConditions& conditions, const AuditOptions& base = {});

}  // namespace geospanner::verify
