#include "verify/degraded.h"

#include <cmath>
#include <sstream>

namespace geospanner::verify {

bool DegradedAudit::pass() const {
    for (const DegradedClaim& c : claims) {
        if (c.claimed && !c.report.pass) return false;
    }
    return true;
}

std::string DegradedAudit::summary() const {
    std::ostringstream out;
    out << "degraded guarantees (alpha=" << conditions.alpha
        << ", crashed=" << conditions.crashed << "): "
        << (pass() ? "PASS" : "FAIL") << "\n";
    for (const DegradedClaim& c : claims) {
        out << "  " << (c.claimed ? "CLAIMED " : "ADVISORY") << " " << c.lemma << " — "
            << c.statement << ": " << (c.report.pass ? "PASS" : "FAIL");
        if (!c.report.pass && !c.report.witnesses.empty()) {
            out << " (" << c.report.witnesses.front().detail << ")";
        }
        out << "\n";
    }
    return out.str();
}

DegradedAudit check_degraded_guarantees(const graph::GeometricGraph& udg,
                                        const core::Backbone& backbone,
                                        const DegradedConditions& conditions,
                                        const AuditOptions& base) {
    DegradedAudit audit;
    audit.conditions = conditions;
    const double alpha =
        conditions.alpha > 0.0 && conditions.alpha < 1.0 ? conditions.alpha : 1.0;
    const bool quasi = alpha < 1.0;
    const auto degree_scale =
        static_cast<std::size_t>(std::ceil(1.0 / (alpha * alpha)));
    const std::string survivors =
        conditions.crashed > 0
            ? " over the surviving topology (" + std::to_string(conditions.crashed) +
                  " crashed)"
            : "";

    // Lemmas 1+2: packing survives with area-packing constants —
    // independence still separates dominators, just only by α·radius.
    {
        AuditOptions opts = base;
        opts.independence_alpha = alpha;
        DegradedClaim c;
        c.lemma = "Lemma 1+2";
        c.claimed = true;
        c.statement =
            quasi ? "≤ (2/α+1)² dominators per dominatee, ≤ (2k/α+1)² per k-ball" +
                        survivors
                  : "≤ 5 dominators per dominatee, ≤ (2k+1)² per k-ball" + survivors;
        c.report = check_dominator_packing(udg, backbone.cluster, opts);
        audit.claims.push_back(std::move(c));
    }

    // Lemma 3: the O(1) message argument counts protocol rounds, not
    // disk geometry — unchanged under any radio model.
    {
        DegradedClaim c;
        c.lemma = "Lemma 3";
        c.claimed = true;
        c.statement = "O(1) messages per node (model-free)" + survivors;
        c.report = check_message_bounds(backbone.messages, base);
        audit.claims.push_back(std::move(c));
    }

    // Lemma 4: backbone degrees are bounded by the dominator packing
    // around each node, so the caps scale with the packing relaxation.
    {
        AuditOptions opts = base;
        opts.max_cds_degree = base.max_cds_degree * degree_scale;
        opts.max_icds_degree = base.max_icds_degree * degree_scale;
        DegradedClaim c;
        c.lemma = "Lemma 4";
        c.claimed = true;
        c.statement = quasi ? "backbone degree caps × ⌈1/α²⌉" + survivors
                            : "bounded CDS/ICDS/LDel degree" + survivors;
        c.report = check_backbone_degree(backbone, opts);
        audit.claims.push_back(std::move(c));
    }

    // Lemmas 5+6: the 3h+2 hop bound is graph-theoretic w.r.t. the
    // communication graph the backbone was built over, so it survives
    // untouched; the length-stretch constant divides by α (each hop
    // still spans ≤ r but a "necessary" hop may only cover α·r).
    {
        AuditOptions opts = base;
        opts.max_length_stretch = base.max_length_stretch / alpha;
        DegradedClaim c;
        c.lemma = "Lemma 5+6";
        c.claimed = true;
        c.statement = quasi ? "hop stretch ≤ 3h+2 unchanged; length stretch ≤ C/α" +
                                  survivors
                            : "hop stretch ≤ 3h+2; length stretch ≤ C" + survivors;
        c.report = check_stretch_bounds(udg, backbone, opts);
        audit.claims.push_back(std::move(c));
    }

    // Lemma 7: LDel planarity rests on crossing links being locally
    // detectable, which needs a common disk radius. Only claimed at
    // α = 1; below that the certificate is advisory (it often still
    // passes — crossings need the degraded band to cut asymmetrically).
    {
        DegradedClaim c;
        c.lemma = "Lemma 7";
        c.claimed = !quasi;
        c.statement = quasi ? "planar embedding NOT guaranteed under quasi-UDG "
                              "(advisory check)"
                            : "LDel(ICDS) planar embedding" + survivors;
        c.report = check_planarity_certificate(backbone.ldel_icds, base);
        audit.claims.push_back(std::move(c));
    }

    // Lemma 8: connectivity preservation is checked component-wise
    // against whatever graph exists, so crashes (which only remove
    // nodes/links) never invalidate the claim itself.
    {
        DegradedClaim c;
        c.lemma = "Lemma 8";
        c.claimed = true;
        c.statement = "backbone preserves UDG reachability" + survivors;
        c.report = check_connectivity_preserved(udg, backbone, base);
        audit.claims.push_back(std::move(c));
    }

    return audit;
}

}  // namespace geospanner::verify
