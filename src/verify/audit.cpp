#include "verify/audit.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "graph/metrics.h"
#include "graph/planarity.h"
#include "graph/shortest_paths.h"
#include "graph/union_find.h"

namespace geospanner::verify {

using graph::GeometricGraph;
using graph::NodeId;

namespace {

/// Recovers the transmission radius when the caller did not supply one:
/// the longest UDG edge is a lower bound tight enough for the packing
/// and far-pair arguments (both only loosen if the true radius is
/// larger).
double effective_radius(const GeometricGraph& udg, const AuditOptions& options) {
    if (options.radius > 0.0) return options.radius;
    double rmax = 0.0;
    for (const auto& [u, v] : udg.edges()) {
        rmax = std::max(rmax, udg.edge_length(u, v));
    }
    return rmax;
}

/// Appends w to report (capped) and marks the report failed.
void add_witness(AuditReport& report, const AuditOptions& options, Witness w) {
    report.pass = false;
    if (report.witnesses.size() < options.max_witnesses) {
        report.witnesses.push_back(std::move(w));
    }
}

Witness pair_witness(NodeId u, NodeId v, double measured, double bound,
                     std::string detail) {
    Witness w;
    w.nodes.push_back(u);
    w.nodes.push_back(v);
    w.measured = measured;
    w.bound = bound;
    w.detail = std::move(detail);
    return w;
}

/// Union-find component label (root id) of every node.
std::vector<std::size_t> component_roots(const GeometricGraph& g) {
    graph::UnionFind uf(g.node_count());
    for (const auto& [u, v] : g.edges()) uf.unite(u, v);
    std::vector<std::size_t> roots(g.node_count());
    for (std::size_t v = 0; v < g.node_count(); ++v) roots[v] = uf.find(v);
    return roots;
}

/// Checks that `topo` does not split any pair of `members` that the UDG
/// connects (members = nullptr means every node). Appends witnesses.
void check_component_refinement(AuditReport& report, const AuditOptions& options,
                                const std::vector<std::size_t>& udg_roots,
                                const GeometricGraph& topo,
                                const std::vector<bool>* members,
                                const std::string& topo_name) {
    const auto topo_roots = component_roots(topo);
    // Representative member per UDG component; every other member of the
    // same UDG component must share its topo component.
    std::vector<NodeId> rep(udg_roots.size(), graph::kInvalidNode);
    for (NodeId v = 0; v < topo.node_count(); ++v) {
        if (members != nullptr && !(*members)[v]) continue;
        NodeId& r = rep[udg_roots[v]];
        if (r == graph::kInvalidNode) {
            r = v;
            continue;
        }
        if (topo_roots[v] != topo_roots[r]) {
            add_witness(report, options,
                        pair_witness(r, v, 0.0, 0.0,
                                     topo_name + " disconnects nodes " +
                                         std::to_string(r) + " and " + std::to_string(v) +
                                         ", connected in the UDG"));
        }
    }
}

AuditReport make_report(std::string check, std::string lemma) {
    AuditReport report;
    report.check = std::move(check);
    report.lemma = std::move(lemma);
    return report;
}

void check_degree_cap(AuditReport& report, const AuditOptions& options,
                      const GeometricGraph& g, std::size_t cap,
                      const std::string& name) {
    for (NodeId v = 0; v < g.node_count(); ++v) {
        if (g.degree(v) > cap) {
            Witness w;
            w.nodes.push_back(v);
            w.measured = static_cast<double>(g.degree(v));
            w.bound = static_cast<double>(cap);
            w.detail = name + " degree of node " + std::to_string(v) + " is " +
                       std::to_string(g.degree(v)) + " > " + std::to_string(cap);
            add_witness(report, options, std::move(w));
        }
    }
}

}  // namespace

std::string AuditReport::summary() const {
    std::ostringstream out;
    out << check << " [" << lemma << "]: ";
    if (pass) {
        out << "PASS";
    } else {
        out << "FAIL (" << witnesses.size() << " witness"
            << (witnesses.size() == 1 ? "" : "es") << ")";
        if (!witnesses.empty()) out << ": " << witnesses.front().detail;
    }
    return out.str();
}

AuditReport check_dominator_packing(const GeometricGraph& udg,
                                    const protocol::ClusterState& cluster,
                                    const AuditOptions& options) {
    AuditReport report = make_report("dominator_packing", "Lemma 1+2");
    const auto n = static_cast<NodeId>(udg.node_count());

    // Independence: no UDG edge joins two dominators.
    for (const auto& [u, v] : udg.edges()) {
        if (cluster.is_dominator(u) && cluster.is_dominator(v)) {
            Witness w;
            w.edges = {{u, v}};
            w.detail = "adjacent dominators " + std::to_string(u) + " and " +
                       std::to_string(v);
            add_witness(report, options, std::move(w));
        }
    }

    // Domination + Lemma 1: every dominatee lists 1..5 adjacent
    // dominators. Under a quasi-UDG (independence_alpha < 1) the
    // angular argument behind 5 is unavailable — non-adjacent
    // dominators are only α·radius apart — so the cap relaxes to the
    // area-packing bound: disjoint α/2-radius disks inside a
    // (1 + α/2)-radius disk give (2/α + 1)².
    const double alpha = std::clamp(options.independence_alpha, 1e-9, 1.0);
    const std::size_t dom_cap =
        alpha < 1.0 ? static_cast<std::size_t>((2.0 / alpha + 1.0) * (2.0 / alpha + 1.0))
                    : options.max_dominators;
    for (NodeId v = 0; v < n; ++v) {
        if (cluster.is_dominator(v)) continue;
        const auto doms = cluster.dominators(v);
        if (doms.empty() && udg.degree(v) > 0) {
            Witness w;
            w.nodes.push_back(v);
            w.detail = "dominatee " + std::to_string(v) + " has no dominator";
            add_witness(report, options, std::move(w));
            continue;
        }
        if (doms.size() > dom_cap) {
            Witness w;
            w.nodes.push_back(v);
            for (const NodeId d : doms) w.nodes.push_back(d);
            w.measured = static_cast<double>(doms.size());
            w.bound = static_cast<double>(dom_cap);
            w.detail = "dominatee " + std::to_string(v) + " has " +
                       std::to_string(doms.size()) + " dominators";
            add_witness(report, options, std::move(w));
        }
        for (const NodeId d : doms) {
            if (!cluster.is_dominator(d) || !udg.has_edge(v, d)) {
                Witness w;
                w.nodes.push_back(v);
                w.nodes.push_back(d);
                w.detail = "listed dominator " + std::to_string(d) + " of " +
                           std::to_string(v) +
                           (cluster.is_dominator(d) ? " is not adjacent"
                                                    : " is not a dominator");
                add_witness(report, options, std::move(w));
            }
        }
    }

    // Lemma 2: at most (2k/α+1)^2 dominators within k radii of any node
    // (α = 1 recovers the paper's (2k+1)^2 exactly).
    const double radius = effective_radius(udg, options);
    if (radius > 0.0) {
        std::vector<NodeId> dominators;
        for (NodeId d = 0; d < n; ++d) {
            if (cluster.is_dominator(d)) dominators.push_back(d);
        }
        for (NodeId v = 0; v < n; ++v) {
            for (const int k : {1, 2}) {
                const double b = 2.0 * static_cast<double>(k) / alpha + 1.0;
                const auto bound = static_cast<std::size_t>(b * b);
                std::size_t count = 0;
                for (const NodeId d : dominators) {
                    if (geom::distance(udg.point(v), udg.point(d)) <= k * radius) {
                        ++count;
                    }
                }
                if (count > bound) {
                    Witness w;
                    w.nodes.push_back(v);
                    w.measured = static_cast<double>(count);
                    w.bound = static_cast<double>(bound);
                    w.detail = std::to_string(count) + " dominators within " +
                               std::to_string(k) + " radii of node " +
                               std::to_string(v);
                    add_witness(report, options, std::move(w));
                }
            }
        }
    }
    return report;
}

AuditReport check_backbone_degree(const core::Backbone& backbone,
                                  const AuditOptions& options) {
    AuditReport report = make_report("backbone_degree", "Lemma 4");
    check_degree_cap(report, options, backbone.cds, options.max_cds_degree, "CDS");
    check_degree_cap(report, options, backbone.icds, options.max_icds_degree, "ICDS");
    check_degree_cap(report, options, backbone.ldel_icds, options.max_icds_degree,
                     "LDel(ICDS)");
    return report;
}

AuditReport check_message_bounds(const core::MessageStats& messages,
                                 const AuditOptions& options) {
    AuditReport report = make_report("message_bounds", "Lemma 3");
    const std::size_t n = messages.after_ldel.size();
    if (n == 0) return report;  // Centralized engine: nothing to certify.
    for (NodeId v = 0; v < n; ++v) {
        const std::size_t cds = messages.after_cds[v];
        const std::size_t icds = messages.after_icds[v];
        const std::size_t ldel = messages.after_ldel[v];
        if (icds != cds + 1 || ldel < icds) {
            Witness w;
            w.nodes.push_back(v);
            w.detail = "non-cumulative counts at node " + std::to_string(v) + ": cds=" +
                       std::to_string(cds) + " icds=" + std::to_string(icds) +
                       " ldel=" + std::to_string(ldel);
            add_witness(report, options, std::move(w));
        }
        if (ldel > options.max_messages_per_node) {
            Witness w;
            w.nodes.push_back(v);
            w.measured = static_cast<double>(ldel);
            w.bound = static_cast<double>(options.max_messages_per_node);
            w.detail = "node " + std::to_string(v) + " sent " + std::to_string(ldel) +
                       " messages";
            add_witness(report, options, std::move(w));
        }
    }
    return report;
}

AuditReport check_planarity_certificate(const GeometricGraph& g,
                                        const AuditOptions& options) {
    AuditReport report = make_report("planarity_certificate", "Lemma 7");
    const auto crossings = graph::crossing_edge_pairs(g, options.max_witnesses);
    for (const auto& [e1, e2] : crossings) {
        Witness w;
        w.edges = {e1, e2};
        w.detail = "edges (" + std::to_string(e1.first) + "," +
                   std::to_string(e1.second) + ") and (" + std::to_string(e2.first) +
                   "," + std::to_string(e2.second) + ") properly cross";
        add_witness(report, options, std::move(w));
    }
    return report;
}

AuditReport check_connectivity_preserved(const GeometricGraph& udg,
                                         const core::Backbone& backbone,
                                         const AuditOptions& options) {
    AuditReport report = make_report("connectivity_preserved", "Lemma 8");
    const auto udg_roots = component_roots(udg);
    check_component_refinement(report, options, udg_roots, backbone.cds,
                               &backbone.in_backbone, "CDS");
    check_component_refinement(report, options, udg_roots, backbone.icds,
                               &backbone.in_backbone, "ICDS");
    check_component_refinement(report, options, udg_roots, backbone.ldel_icds,
                               &backbone.in_backbone, "LDel(ICDS)");
    check_component_refinement(report, options, udg_roots, backbone.cds_prime, nullptr,
                               "CDS'");
    check_component_refinement(report, options, udg_roots, backbone.icds_prime, nullptr,
                               "ICDS'");
    check_component_refinement(report, options, udg_roots, backbone.ldel_icds_prime,
                               nullptr, "LDel(ICDS')");
    return report;
}

AuditReport check_stretch_bounds(const GeometricGraph& udg,
                                 const core::Backbone& backbone,
                                 const AuditOptions& options) {
    AuditReport report = make_report("stretch_bounds", "Lemma 5+6+8");
    const auto n = static_cast<NodeId>(udg.node_count());
    const double radius = effective_radius(udg, options);

    for (NodeId s = 0; s < n; ++s) {
        // Lemma 5: per-pair CDS' hop distance at most 3h + 2.
        const auto base_hops = graph::bfs_hops(udg, s);
        const auto topo_hops = graph::bfs_hops(backbone.cds_prime, s);
        for (NodeId t = s + 1; t < n; ++t) {
            if (base_hops[t] == graph::kUnreachableHops) continue;
            if (topo_hops[t] == graph::kUnreachableHops ||
                topo_hops[t] > 3 * base_hops[t] + options.max_hop_stretch_slack) {
                const double measured = topo_hops[t] == graph::kUnreachableHops
                                            ? std::numeric_limits<double>::infinity()
                                            : static_cast<double>(topo_hops[t]);
                add_witness(report, options,
                            pair_witness(s, t, measured,
                                         3.0 * base_hops[t] + options.max_hop_stretch_slack,
                                         "CDS' hop distance " + std::to_string(s) + "->" +
                                             std::to_string(t) + " exceeds 3h+2"));
            }
        }

        // Lemmas 6 and 8: length stretch of the spanning topologies for
        // pairs more than one radius apart.
        const auto base_len = graph::dijkstra_lengths(udg, s);
        const auto cds_len = graph::dijkstra_lengths(backbone.cds_prime, s);
        const auto ldel_len = graph::dijkstra_lengths(backbone.ldel_icds_prime, s);
        for (NodeId t = s + 1; t < n; ++t) {
            if (base_hops[t] == graph::kUnreachableHops) continue;
            if (geom::distance(udg.point(s), udg.point(t)) <= radius) continue;
            if (base_len[t] <= 0.0) continue;
            const double cap = options.max_length_stretch * base_len[t];
            if (cds_len[t] > cap) {
                add_witness(report, options,
                            pair_witness(s, t, cds_len[t] / base_len[t],
                                         options.max_length_stretch,
                                         "CDS' length stretch of pair " +
                                             std::to_string(s) + "," + std::to_string(t) +
                                             " exceeds the bound"));
            }
            if (ldel_len[t] > cap) {
                add_witness(report, options,
                            pair_witness(s, t, ldel_len[t] / base_len[t],
                                         options.max_length_stretch,
                                         "LDel(ICDS') length stretch of pair " +
                                             std::to_string(s) + "," + std::to_string(t) +
                                             " exceeds the bound"));
            }
        }
    }
    return report;
}

// ---- Stage-level audits ----------------------------------------------

bool StageAudit::pass() const {
    return std::all_of(reports.begin(), reports.end(),
                       [](const AuditReport& r) { return r.pass; });
}

bool AuditTrail::pass() const {
    return std::all_of(stages.begin(), stages.end(),
                       [](const StageAudit& s) { return s.pass(); });
}

const AuditReport* AuditTrail::first_failure() const {
    for (const auto& stage : stages) {
        for (const auto& report : stage.reports) {
            if (!report.pass) return &report;
        }
    }
    return nullptr;
}

std::string AuditTrail::summary() const {
    std::ostringstream out;
    for (const auto& stage : stages) {
        for (const auto& report : stage.reports) {
            out << stage.stage << ": " << report.summary() << '\n';
        }
    }
    return out.str();
}

StageAudit audit_clustering(const GeometricGraph& udg,
                            const protocol::ClusterState& cluster,
                            const AuditOptions& options) {
    return {"clustering", {check_dominator_packing(udg, cluster, options)}};
}

StageAudit audit_connectors(const GeometricGraph& udg,
                            const protocol::ClusterState& cluster,
                            const std::vector<std::pair<NodeId, NodeId>>& cds_edges,
                            const AuditOptions& options) {
    // Rebuild the CDS graphs the assemble stage will produce, so a bad
    // election fails here, with the elected edges as evidence.
    core::Backbone partial;
    partial.cluster = cluster;
    partial.cds = GeometricGraph(udg.points());
    for (const auto& [u, v] : cds_edges) partial.cds.add_edge(u, v);
    partial.cds_prime = core::with_dominatee_links(partial.cds, cluster);
    // Stretch only needs the CDS graphs; satisfy the checker's Backbone
    // interface with LDel' := CDS' (same bound applies).
    partial.ldel_icds_prime = partial.cds_prime;
    return {"connectors", {check_stretch_bounds(udg, partial, options)}};
}

StageAudit audit_icds(const GeometricGraph& udg, const std::vector<bool>& in_backbone,
                      const GeometricGraph& icds, const AuditOptions& options) {
    AuditReport report = make_report("icds_induced", "ICDS definition");
    for (const auto& [u, v] : icds.edges()) {
        if (!udg.has_edge(u, v) || !in_backbone[u] || !in_backbone[v]) {
            Witness w;
            w.edges = {{u, v}};
            w.detail = "ICDS edge (" + std::to_string(u) + "," + std::to_string(v) +
                       ") is not a backbone UDG edge";
            add_witness(report, options, std::move(w));
        }
    }
    // Induced completeness: every UDG edge between backbone nodes is kept.
    for (const auto& [u, v] : udg.edges()) {
        if (in_backbone[u] && in_backbone[v] && !icds.has_edge(u, v)) {
            Witness w;
            w.edges = {{u, v}};
            w.detail = "backbone UDG edge (" + std::to_string(u) + "," +
                       std::to_string(v) + ") missing from ICDS";
            add_witness(report, options, std::move(w));
        }
    }
    AuditReport connected = make_report("icds_connectivity", "Lemma 8");
    check_component_refinement(connected, options, component_roots(udg), icds,
                               &in_backbone, "ICDS");
    return {"icds", {std::move(report), std::move(connected)}};
}

StageAudit audit_ldel(const GeometricGraph& udg, const core::Backbone& backbone,
                      const AuditOptions& options) {
    StageAudit stage{"ldel", {}};
    stage.reports.push_back(check_planarity_certificate(backbone.ldel_icds, options));
    stage.reports.push_back(check_backbone_degree(backbone, options));
    stage.reports.push_back(check_connectivity_preserved(udg, backbone, options));
    stage.reports.push_back(check_stretch_bounds(udg, backbone, options));
    stage.reports.push_back(check_message_bounds(backbone.messages, options));
    return stage;
}

StageAudit audit_shards(const GeometricGraph& udg, const core::Backbone& backbone,
                        const ShardLayout& layout, const AuditOptions& options) {
    const std::size_t n = udg.node_count();
    const std::size_t tiles = layout.regions.size();

    // Region membership bitmaps, reused by every report below.
    std::vector<std::vector<bool>> in_region(tiles, std::vector<bool>(n, false));
    for (std::size_t t = 0; t < tiles; ++t) {
        for (NodeId v : layout.regions[t]) {
            if (v < n) in_region[t][v] = true;
        }
    }

    AuditReport ownership = make_report("shard_ownership", "shard partition");
    if (layout.tile_of.size() != n) {
        Witness w;
        w.measured = static_cast<double>(layout.tile_of.size());
        w.bound = static_cast<double>(n);
        w.detail = "tile_of covers " + std::to_string(layout.tile_of.size()) +
                   " nodes, UDG has " + std::to_string(n);
        add_witness(ownership, options, std::move(w));
    } else {
        for (NodeId v = 0; v < n; ++v) {
            const std::uint32_t t = layout.tile_of[v];
            if (t >= tiles) {
                Witness w;
                w.nodes.push_back(v);
                w.measured = static_cast<double>(t);
                w.bound = static_cast<double>(tiles);
                w.detail = "node " + std::to_string(v) + " owned by tile " +
                           std::to_string(t) + " but only " + std::to_string(tiles) +
                           " tiles exist";
                add_witness(ownership, options, std::move(w));
            } else if (!in_region[t][v]) {
                Witness w;
                w.nodes.push_back(v);
                w.detail = "node " + std::to_string(v) + " missing from region of its" +
                           " owner tile " + std::to_string(t);
                add_witness(ownership, options, std::move(w));
            }
        }
    }

    // Halo sufficiency: multi-source BFS from each tile's owned set in
    // the merged UDG must stay inside the region for halo_hops levels —
    // the "every owned decision saw its full hop ball" certificate.
    AuditReport halo = make_report("shard_halo", "shard halo width");
    if (ownership.pass) {
        std::vector<std::uint32_t> dist(n);
        std::vector<NodeId> frontier, next;
        for (std::size_t t = 0; t < tiles; ++t) {
            std::fill(dist.begin(), dist.end(),
                      std::numeric_limits<std::uint32_t>::max());
            frontier.clear();
            for (NodeId v = 0; v < n; ++v) {
                if (layout.tile_of[v] == t) {
                    dist[v] = 0;
                    frontier.push_back(v);
                }
            }
            for (std::uint32_t hop = 1;
                 hop <= layout.halo_hops && !frontier.empty(); ++hop) {
                next.clear();
                for (NodeId u : frontier) {
                    for (NodeId v : udg.neighbors(u)) {
                        if (dist[v] != std::numeric_limits<std::uint32_t>::max()) {
                            continue;
                        }
                        dist[v] = hop;
                        next.push_back(v);
                        if (!in_region[t][v]) {
                            Witness w;
                            w.nodes.push_back(v);
                            w.measured = static_cast<double>(hop);
                            w.bound = static_cast<double>(layout.halo_hops);
                            w.detail = "node " + std::to_string(v) + " is " +
                                       std::to_string(hop) + " hops from tile " +
                                       std::to_string(t) +
                                       "'s owned set but outside its region";
                            add_witness(halo, options, std::move(w));
                        }
                    }
                }
                frontier.swap(next);
            }
        }
    }

    // Edge coverage: every merged edge lies fully inside the region of
    // the tile that owns it (tile of the smaller endpoint), i.e. some
    // tile's pipeline actually saw both endpoints and certified it.
    AuditReport coverage = make_report("shard_edge_coverage", "shard merge");
    if (ownership.pass) {
        const auto check_graph = [&](const GeometricGraph& g, const std::string& name) {
            for (const auto& [u, v] : g.edges()) {
                const std::uint32_t t = layout.tile_of[std::min(u, v)];
                if (!in_region[t][u] || !in_region[t][v]) {
                    Witness w;
                    w.edges = {{u, v}};
                    w.detail = name + " edge (" + std::to_string(u) + "," +
                               std::to_string(v) + ") escapes the region of owner tile " +
                               std::to_string(t);
                    add_witness(coverage, options, std::move(w));
                }
            }
        };
        check_graph(udg, "UDG");
        check_graph(backbone.cds, "CDS");
        check_graph(backbone.cds_prime, "CDS'");
        check_graph(backbone.icds, "ICDS");
        check_graph(backbone.icds_prime, "ICDS'");
        check_graph(backbone.ldel_icds, "LDel(ICDS)");
        check_graph(backbone.ldel_icds_prime, "LDel(ICDS)'");
    }

    return {"shards", {std::move(ownership), std::move(halo), std::move(coverage)}};
}

StageAudit audit_patch_components(const GeometricGraph& udg, const PatchLayout& layout,
                                  const AuditOptions& options) {
    const std::size_t n = udg.node_count();
    const std::size_t comps = layout.regions.size();
    constexpr std::uint32_t kNoOwner = std::numeric_limits<std::uint32_t>::max();

    AuditReport regions_ok = make_report("patch_regions", "patch decomposition");
    for (std::size_t t = 0; t < comps; ++t) {
        const auto& region = layout.regions[t];
        for (std::size_t i = 0; i < region.size(); ++i) {
            const bool unsorted = i > 0 && region[i] <= region[i - 1];
            if (region[i] >= n || unsorted) {
                Witness w;
                w.nodes.push_back(region[i]);
                w.detail = "component " + std::to_string(t) +
                           (unsorted ? " region not sorted/unique at node "
                                     : " region holds invalid node ") +
                           std::to_string(region[i]);
                add_witness(regions_ok, options, std::move(w));
            }
        }
    }

    // Region membership map, reused by the separation BFS below. A node
    // in two regions would let two components elect or delete the same
    // connector pair — the exact race the decomposition must exclude.
    AuditReport disjoint = make_report("patch_disjoint", "patch decomposition");
    std::vector<std::uint32_t> owner(n, kNoOwner);
    if (regions_ok.pass) {
        for (std::size_t t = 0; t < comps; ++t) {
            for (NodeId v : layout.regions[t]) {
                if (owner[v] != kNoOwner) {
                    Witness w;
                    w.nodes.push_back(v);
                    w.detail = "node " + std::to_string(v) + " lies in regions of" +
                               " components " + std::to_string(owner[v]) + " and " +
                               std::to_string(t);
                    add_witness(disjoint, options, std::move(w));
                } else {
                    owner[v] = static_cast<std::uint32_t>(t);
                }
            }
        }
    }

    // Separation: seeds of distinct components are claimed
    // ≥ separation_hops apart; regions are 2-hop seed expansions, so
    // region-to-region distance must be ≥ separation_hops − 4. BFS from
    // each region and flag any foreign region node reached sooner.
    AuditReport separation = make_report("patch_separation", "patch separation");
    if (regions_ok.pass && disjoint.pass && comps > 1 && layout.separation_hops > 4) {
        const std::uint32_t gap =
            static_cast<std::uint32_t>(layout.separation_hops - 4);
        std::vector<std::uint32_t> dist(n);
        std::vector<NodeId> frontier, next;
        for (std::size_t t = 0; t < comps; ++t) {
            std::fill(dist.begin(), dist.end(),
                      std::numeric_limits<std::uint32_t>::max());
            frontier.assign(layout.regions[t].begin(), layout.regions[t].end());
            for (NodeId v : frontier) dist[v] = 0;
            for (std::uint32_t hop = 1; hop < gap && !frontier.empty(); ++hop) {
                next.clear();
                for (NodeId u : frontier) {
                    for (NodeId v : udg.neighbors(u)) {
                        if (dist[v] != std::numeric_limits<std::uint32_t>::max()) {
                            continue;
                        }
                        dist[v] = hop;
                        next.push_back(v);
                        if (owner[v] != kNoOwner && owner[v] != t) {
                            Witness w;
                            w.nodes.push_back(v);
                            w.measured = static_cast<double>(hop);
                            w.bound = static_cast<double>(gap);
                            w.detail = "component " + std::to_string(owner[v]) +
                                       " region node " + std::to_string(v) + " is " +
                                       std::to_string(hop) + " hops from component " +
                                       std::to_string(t) + "'s region (need >= " +
                                       std::to_string(gap) + ")";
                            add_witness(separation, options, std::move(w));
                        }
                    }
                }
                frontier.swap(next);
            }
        }
    }

    return {"patch",
            {std::move(regions_ok), std::move(disjoint), std::move(separation)}};
}

AuditTrail audit_backbone(const GeometricGraph& udg, const core::Backbone& backbone,
                          const AuditOptions& options) {
    AuditTrail trail;
    trail.stages.push_back(audit_clustering(udg, backbone.cluster, options));
    trail.stages.push_back(
        audit_connectors(udg, backbone.cluster, backbone.cds.edges(), options));
    trail.stages.push_back(
        audit_icds(udg, backbone.in_backbone, backbone.icds, options));
    trail.stages.push_back(audit_ldel(udg, backbone, options));
    return trail;
}

}  // namespace geospanner::verify
