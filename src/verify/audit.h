// Paper-invariant auditor: one machine-checkable certificate per claim.
//
// Each Lemma 1–8 property of the paper has a named checker returning a
// structured AuditReport — pass/fail plus the concrete violating
// node/edge/pair witness — instead of a bare bool, so a failing audit is
// a replayable counterexample, not just a red test. The checkers are
// pure read-only functions of finished structures; running them can
// never change a pipeline's output (the engine's audits-on/off equality
// test pins exactly that).
//
// Lemma → checker map (also in docs/ARCHITECTURE.md):
//   Lemma 1 (≤ 5 dominators per dominatee)       check_dominator_packing
//   Lemma 2 (≤ (2k+1)² dominators in k·radius)   check_dominator_packing
//   Lemma 3 (O(1) messages per node)             check_message_bounds
//   Lemma 4 (bounded CDS/ICDS/LDel degree)       check_backbone_degree
//   Lemma 5 (CDS' hop stretch ≤ 3h + 2)          check_stretch_bounds
//   Lemma 6 (CDS' length stretch ≤ constant)     check_stretch_bounds
//   Lemma 7 (LDel(ICDS) planar embedding)        check_planarity_certificate
//   Lemma 8 (LDel spanner preserves reachability) check_connectivity_preserved
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "core/backbone.h"
#include "graph/geometric_graph.h"
#include "protocol/cluster_state.h"

namespace geospanner::verify {

/// Concrete evidence for one violation: the offending nodes and/or
/// edges, the measured quantity, and the bound it broke.
struct Witness {
    std::vector<graph::NodeId> nodes;
    std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
    double measured = 0.0;
    double bound = 0.0;
    std::string detail;  ///< human-readable one-liner
};

/// Certificate of one checker run. Pass ⇔ no witnesses (witness
/// collection is capped at AuditOptions::max_witnesses, so a fail
/// carries at least one but not necessarily every violation).
struct AuditReport {
    std::string check;  ///< e.g. "dominator_packing"
    std::string lemma;  ///< e.g. "Lemma 1+2"
    bool pass = true;
    std::vector<Witness> witnesses;

    [[nodiscard]] explicit operator bool() const noexcept { return pass; }
    /// "check [lemma]: PASS" or a fail line with the first witness.
    [[nodiscard]] std::string summary() const;
};

/// Tunable caps. The paper's constants are existential; the degree /
/// message caps here are the empirical pins the test suite has always
/// used (a regression past them is a semantic change worth a look even
/// if some constant technically still exists).
struct AuditOptions {
    std::size_t max_witnesses = 8;
    /// Transmission radius; 0 = recover it from the longest UDG edge.
    double radius = 0.0;
    std::size_t max_dominators = 5;           ///< Lemma 1
    std::size_t max_cds_degree = 30;          ///< Lemma 4 empirical cap
    std::size_t max_icds_degree = 40;         ///< Lemma 4 empirical cap
    std::size_t max_messages_per_node = 250;  ///< Lemma 3 empirical cap
    double max_hop_stretch_slack = 2.0;       ///< Lemma 5: hops ≤ 3h + slack
    double max_length_stretch = 16.0;         ///< Lemma 6 constant (far pairs)
    /// Quasi-UDG link-radius floor factor (fault::QuasiUdgModel::alpha).
    /// Under a quasi-UDG, MIS independence only separates dominators by
    /// α·radius, so the disk-packing constants of Lemmas 1–2 relax:
    /// < 1 switches the Lemma 1 cap to the area-packing bound
    /// (2/α + 1)² and the Lemma 2 cap to (2k/α + 1)². 1.0 = exact UDG
    /// (the paper's constants).
    double independence_alpha = 1.0;
};

// ---- Per-lemma checkers ----------------------------------------------

/// Lemmas 1 and 2, plus the MIS validity they presuppose: dominators are
/// pairwise non-adjacent, every dominatee has ≥ 1 and ≤ 5 adjacent
/// dominators (all actually dominators and UDG-adjacent), and at most
/// (2k+1)² dominators lie within k·radius of any node (k = 1, 2).
[[nodiscard]] AuditReport check_dominator_packing(const graph::GeometricGraph& udg,
                                                  const protocol::ClusterState& cluster,
                                                  const AuditOptions& options = {});

/// Lemma 4: CDS, ICDS, and LDel(ICDS) degrees stay under the caps
/// (LDel(ICDS) ⊆ ICDS so it shares the ICDS cap).
[[nodiscard]] AuditReport check_backbone_degree(const core::Backbone& backbone,
                                                const AuditOptions& options = {});

/// Lemma 3: cumulative per-node message counts are monotone across
/// stages, ICDS adds exactly one RoleAnnounce, and the final count stays
/// under the cap. Vacuously passes on empty stats (centralized engine).
[[nodiscard]] AuditReport check_message_bounds(const core::MessageStats& messages,
                                               const AuditOptions& options = {});

/// Lemma 7: no two edges of g properly cross in the straight-line
/// embedding — a geometric certificate via graph::crossing_edge_pairs
/// (exact predicates), not an Euler-bound heuristic. Witnesses carry the
/// crossing edge pairs.
[[nodiscard]] AuditReport check_planarity_certificate(const graph::GeometricGraph& g,
                                                      const AuditOptions& options = {});

/// Lemma 8 (reachability half): every pair connected in the UDG stays
/// connected in LDel(ICDS'), and the backbone graphs (CDS, ICDS,
/// LDel(ICDS)) do not split backbone nodes that the UDG connects. Works
/// component-wise, so disconnected inputs audit cleanly too.
[[nodiscard]] AuditReport check_connectivity_preserved(const graph::GeometricGraph& udg,
                                                       const core::Backbone& backbone,
                                                       const AuditOptions& options = {});

/// Lemmas 5, 6, and the spanner half of Lemma 8: per-pair CDS' hop
/// distance ≤ 3h + 2 (h = UDG hop distance), CDS' length stretch for
/// pairs more than one radius apart ≤ max_length_stretch, and the same
/// length bound for LDel(ICDS') (its paths refine CDS' up to the LDel
/// constant; the shared cap is the suite's long-standing empirical pin).
/// Witnesses carry the violating pair and both path costs, in the style
/// of graph::length_stretch_witness.
[[nodiscard]] AuditReport check_stretch_bounds(const graph::GeometricGraph& udg,
                                               const core::Backbone& backbone,
                                               const AuditOptions& options = {});

// ---- Stage-level audits ----------------------------------------------

/// The reports of one pipeline stage's audit.
struct StageAudit {
    std::string stage;  ///< "clustering", "connectors", "icds", "ldel"
    std::vector<AuditReport> reports;

    [[nodiscard]] bool pass() const;
};

/// Full audit trail of one pipeline run (one StageAudit per audited
/// stage, in execution order).
struct AuditTrail {
    std::vector<StageAudit> stages;

    [[nodiscard]] bool pass() const;
    /// First failing report, or nullptr when everything passed.
    [[nodiscard]] const AuditReport* first_failure() const;
    /// One line per report; failing reports include their first witness.
    [[nodiscard]] std::string summary() const;
};

/// Post-clustering audit (Lemmas 1–2).
[[nodiscard]] StageAudit audit_clustering(const graph::GeometricGraph& udg,
                                          const protocol::ClusterState& cluster,
                                          const AuditOptions& options = {});

/// Post-connector audit: rebuilds CDS/CDS' from the elected edges and
/// checks Lemmas 5–6 on them, so a bad election is caught before the
/// later stages run.
[[nodiscard]] StageAudit audit_connectors(
    const graph::GeometricGraph& udg, const protocol::ClusterState& cluster,
    const std::vector<std::pair<graph::NodeId, graph::NodeId>>& cds_edges,
    const AuditOptions& options = {});

/// Post-ICDS audit: the induced backbone is a UDG subgraph on backbone
/// nodes and preserves their UDG reachability.
[[nodiscard]] StageAudit audit_icds(const graph::GeometricGraph& udg,
                                    const std::vector<bool>& in_backbone,
                                    const graph::GeometricGraph& icds,
                                    const AuditOptions& options = {});

/// Post-LDel audit over the finished backbone: planarity certificate,
/// degree bounds, connectivity preservation, stretch bounds, message
/// bounds (Lemmas 3, 4, 7, 8 + the full stretch re-check).
[[nodiscard]] StageAudit audit_ldel(const graph::GeometricGraph& udg,
                                    const core::Backbone& backbone,
                                    const AuditOptions& options = {});

/// Runs every stage audit over a finished backbone — the one-call "did
/// this pipeline change semantics" gate used by tests and the fuzz
/// harness.
[[nodiscard]] AuditTrail audit_backbone(const graph::GeometricGraph& udg,
                                        const core::Backbone& backbone,
                                        const AuditOptions& options = {});

// ---- Sharded-construction audit --------------------------------------

/// How a tile-sharded build (src/shard) carved the plane: the ownership
/// map and, per tile, the halo-extended region the tile's pipeline ran
/// on. Lives here rather than in src/shard so the auditor stays below
/// the engines in the layer order.
struct ShardLayout {
    std::vector<std::uint32_t> tile_of;               ///< node → owner tile
    std::vector<std::vector<graph::NodeId>> regions;  ///< per tile, ascending
    std::size_t halo_hops = 0;                        ///< halo width in hop units
};

/// Shard-boundary audit of a merged sharded build:
///  * shard_ownership — every node is owned by exactly one valid tile
///    and appears in that tile's region;
///  * shard_halo — halo-width sufficiency, certified by multi-source
///    BFS: every node within halo_hops UDG hops of a tile's owned set
///    lies in that tile's region (each hop spans ≤ radius, so the
///    Euclidean halo must dominate the hop ball — this is the invariant
///    the equivalence proof rests on);
///  * shard_edge_coverage — every merged backbone edge (CDS, ICDS,
///    LDel(ICDS) and primed variants) plus every UDG edge has both
///    endpoints inside its owner tile's region, i.e. at least one tile
///    actually certified it.
[[nodiscard]] StageAudit audit_shards(const graph::GeometricGraph& udg,
                                      const core::Backbone& backbone,
                                      const ShardLayout& layout,
                                      const AuditOptions& options = {});

// ---- Dynamic-patch component audit ------------------------------------

/// How one incremental patch carved its dirty set: the per-component
/// 2-hop dirty regions (sorted node ids, from
/// dynamic::PatchStats::components) and the minimum seed-set hop
/// separation the patcher certified between distinct components
/// (PatchStats::separation_hops). Lives here rather than in src/dynamic
/// for the same layering reason as ShardLayout.
struct PatchLayout {
    std::vector<std::vector<graph::NodeId>> regions;  ///< per component, ascending
    std::size_t separation_hops = 0;
};

/// Patch-decomposition audit over the post-patch UDG:
///  * patch_regions — every region is a sorted duplicate-free set of
///    valid node ids;
///  * patch_disjoint — no node lies in two components' regions (the
///    precondition for planning components in parallel and committing
///    their connector plans independently);
///  * patch_separation — distinct components' regions stay
///    ≥ separation_hops − 4 UDG hops apart (seed sets are
///    ≥ separation_hops apart and each region is a 2-hop expansion of
///    its seeds), certified by multi-source BFS per component.
/// The separation check is one-sided/sound: the patcher's claim is over
/// old ∪ new adjacency, a supergraph of the post-patch UDG, so hop
/// distances here only overestimate — any violation found is a genuine
/// violation of the claim, though a claim violation that used a removed
/// edge may go unseen.
[[nodiscard]] StageAudit audit_patch_components(const graph::GeometricGraph& udg,
                                                const PatchLayout& layout,
                                                const AuditOptions& options = {});

}  // namespace geospanner::verify
