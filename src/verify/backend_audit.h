// Claimed-bounds contract for pluggable spanner backends.
//
// Every backend in src/backends advertises the guarantees its
// construction is supposed to provide — plane or not, connectivity
// preservation, a max-degree cap, length- and hop-stretch bounds — as a
// BackendClaims value, and one generic audit_backend call checks a
// finished spanner against exactly those advertised claims. A backend is
// never audited against another backend's guarantees: Baswana–Sen does
// not claim planarity, so no planarity certificate is attempted for it,
// while Biniaz-style and Kanj–Perković do claim it and must produce a
// crossing-free embedding on every input, degenerate ones included.
//
// BackendClaims lives here rather than in src/backends for the same
// layering reason as ShardLayout and PatchLayout in audit.h: the auditor
// stays below the engines it certifies, so src/backends can link
// gs_verify without a cycle.
#pragma once

#include "verify/audit.h"

namespace geospanner::verify {

/// Guarantees a spanner backend advertises for its output graph. A zero
/// numeric field means "no claim" and the corresponding check is
/// skipped; boolean claims are checked only when set. Numeric bounds
/// follow the suite's convention: paper constants are existential, so
/// backends pin the empirical constants their construction actually
/// achieves (a regression past a pin is a semantic change worth a look).
struct BackendClaims {
    /// Every spanner edge is a UDG edge (same node set, same points).
    bool subgraph_of_udg = true;
    /// Pairs connected in the UDG stay connected in the spanner.
    bool connected = true;
    /// No two spanner edges properly cross in the straight-line
    /// embedding (collinear overlap and shared endpoints excluded, as in
    /// graph::crossing_edge_pairs).
    bool plane = false;
    /// Max node degree; 0 = unbounded / no claim.
    std::size_t max_degree = 0;
    /// Euclidean length stretch vs UDG shortest paths for pairs more
    /// than one radius apart (the paper's far-pair convention);
    /// 0 = no claim.
    double max_length_stretch = 0.0;
    /// Hop stretch claim of the form hops(u,v) <= factor * h + offset
    /// with h the UDG hop distance; factor 0 = no claim.
    double hop_stretch_factor = 0.0;
    double hop_stretch_offset = 0.0;
};

/// Audits one backend's finished spanner against its own advertised
/// claims. Emits one AuditReport per claimed property:
///  * backend_subgraph     — same points, every edge present in the UDG;
///  * backend_connectivity — UDG components are never split;
///  * backend_planarity    — geometric planarity certificate;
///  * backend_degree       — per-node degree cap;
///  * backend_hop_stretch  — per-pair hops <= factor * h + offset;
///  * backend_length_stretch — far-pair length stretch cap.
/// Stretch checks sweep every source (all-pairs BFS/Dijkstra), so they
/// are meant for test-sized instances; benches measure sampled stretch
/// instead. `options.radius` should carry the build radius (0 recovers
/// it from the longest UDG edge, which only loosens the far-pair
/// filter).
[[nodiscard]] StageAudit audit_backend(const graph::GeometricGraph& udg,
                                       const graph::GeometricGraph& spanner,
                                       const BackendClaims& claims,
                                       const AuditOptions& options = {});

}  // namespace geospanner::verify
