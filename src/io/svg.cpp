#include "io/svg.h"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace geospanner::io {

std::string render_svg(const graph::GeometricGraph& g,
                       const std::vector<NodeClass>& classes, const SvgStyle& style) {
    // World bounding box -> canvas transform (y flipped: SVG grows down).
    double min_x = 0.0;
    double min_y = 0.0;
    double max_x = 1.0;
    double max_y = 1.0;
    if (g.node_count() > 0) {
        min_x = max_x = g.point(0).x;
        min_y = max_y = g.point(0).y;
        for (const auto& p : g.points()) {
            min_x = std::min(min_x, p.x);
            max_x = std::max(max_x, p.x);
            min_y = std::min(min_y, p.y);
            max_y = std::max(max_y, p.y);
        }
    }
    const double span = std::max({max_x - min_x, max_y - min_y, 1e-9});
    const double scale = (style.canvas - 2.0 * style.margin) / span;
    const auto tx = [&](geom::Point p) { return style.margin + (p.x - min_x) * scale; };
    const auto ty = [&](geom::Point p) { return style.canvas - style.margin - (p.y - min_y) * scale; };

    std::ostringstream out;
    out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << style.canvas
        << "\" height=\"" << style.canvas << "\" viewBox=\"0 0 " << style.canvas << ' '
        << style.canvas << "\">\n";
    if (!style.title.empty()) {
        out << "  <title>" << style.title << "</title>\n"
            << "  <text x=\"" << style.margin << "\" y=\"" << style.margin * 0.75
            << "\" font-family=\"sans-serif\" font-size=\"12\">" << style.title
            << "</text>\n";
    }
    out << "  <g stroke=\"" << style.edge_color << "\" stroke-width=\"" << style.edge_width
        << "\">\n";
    for (const auto& [u, v] : g.edges()) {
        out << "    <line x1=\"" << tx(g.point(u)) << "\" y1=\"" << ty(g.point(u))
            << "\" x2=\"" << tx(g.point(v)) << "\" y2=\"" << ty(g.point(v)) << "\"/>\n";
    }
    out << "  </g>\n";

    for (graph::NodeId v = 0; v < g.node_count(); ++v) {
        const NodeClass cls = v < classes.size() ? classes[v] : NodeClass::kPlain;
        const double x = tx(g.point(v));
        const double y = ty(g.point(v));
        const double r = style.node_radius;
        switch (cls) {
            case NodeClass::kDominator:
                out << "  <rect x=\"" << x - 1.5 * r << "\" y=\"" << y - 1.5 * r
                    << "\" width=\"" << 3.0 * r << "\" height=\"" << 3.0 * r
                    << "\" fill=\"#c0392b\"/>\n";
                break;
            case NodeClass::kConnector:
                out << "  <rect x=\"" << x - 1.2 * r << "\" y=\"" << y - 1.2 * r
                    << "\" width=\"" << 2.4 * r << "\" height=\"" << 2.4 * r
                    << "\" fill=\"#2980b9\"/>\n";
                break;
            case NodeClass::kPlain:
                out << "  <circle cx=\"" << x << "\" cy=\"" << y << "\" r=\"" << r
                    << "\" fill=\"#7f8c8d\"/>\n";
                break;
        }
    }
    out << "</svg>\n";
    return out.str();
}

bool write_svg(const std::string& path, const graph::GeometricGraph& g,
               const std::vector<NodeClass>& classes, const SvgStyle& style) {
    std::ofstream file(path);
    if (!file) return false;
    file << render_svg(g, classes, style);
    return static_cast<bool>(file);
}

}  // namespace geospanner::io
