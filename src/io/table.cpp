#include "io/table.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace geospanner::io {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::begin_row() {
    rows_.emplace_back();
    return *this;
}

Table& Table::cell(const std::string& text) {
    rows_.back().push_back(text);
    return *this;
}

Table& Table::cell(double value, int precision) {
    std::ostringstream out;
    out << std::fixed << std::setprecision(precision) << value;
    return cell(out.str());
}

Table& Table::cell(std::size_t value) {
    return cell(std::to_string(value));
}

Table& Table::dash() {
    return cell(std::string("-"));
}

std::string Table::str() const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    std::ostringstream out;
    const auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
        }
        out << '\n';
    };
    emit(header_);
    std::vector<std::string> rule;
    rule.reserve(header_.size());
    for (const std::size_t w : widths) rule.emplace_back(w, '-');
    emit(rule);
    for (const auto& row : rows_) emit(row);
    return out.str();
}

std::string Table::csv() const {
    const auto quote = [](const std::string& cell) {
        if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
        std::string quoted = "\"";
        for (const char c : cell) {
            if (c == '"') quoted += '"';
            quoted += c;
        }
        quoted += '"';
        return quoted;
    };
    std::ostringstream out;
    const auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c != 0) out << ',';
            out << quote(row[c]);
        }
        out << '\n';
    };
    emit(header_);
    for (const auto& row : rows_) emit(row);
    return out.str();
}

bool maybe_write_csv(const std::string& name, const Table& table) {
    const char* dir = std::getenv("GS_BENCH_CSV_DIR");
    if (dir == nullptr || *dir == '\0') return false;
    std::filesystem::create_directories(dir);
    const std::filesystem::path path = std::filesystem::path(dir) / (name + ".csv");
    std::ofstream file(path);
    if (!file) return false;
    file << table.csv();
    return static_cast<bool>(file);
}

}  // namespace geospanner::io
