// Plain-text (de)serialization of geometric graphs, and Graphviz DOT
// export — for archiving experiment instances and inspecting topologies
// with external tools.
//
// Format ("gsg v1"):
//   gsg 1
//   <node_count> <edge_count>
//   <x> <y>                 (node_count lines, max-precision doubles)
//   <u> <v>                 (edge_count lines, u < v)
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "graph/geometric_graph.h"

namespace geospanner::io {

void write_graph(std::ostream& out, const graph::GeometricGraph& g);
[[nodiscard]] std::optional<graph::GeometricGraph> read_graph(std::istream& in);

/// File-based convenience wrappers; return false / nullopt on I/O or
/// parse failure.
bool save_graph(const std::string& path, const graph::GeometricGraph& g);
[[nodiscard]] std::optional<graph::GeometricGraph> load_graph(const std::string& path);

/// Graphviz DOT (neato-friendly: nodes carry pos="x,y!" pins).
[[nodiscard]] std::string to_dot(const graph::GeometricGraph& g,
                                 const std::string& name = "topology");

}  // namespace geospanner::io
