// Plain-text (de)serialization of geometric graphs, and Graphviz DOT
// export — for archiving experiment instances and inspecting topologies
// with external tools.
//
// Format ("gsg v1"):
//   gsg 1
//   <node_count> <edge_count>
//   <x> <y>                 (node_count lines, max-precision doubles)
//   <u> <v>                 (edge_count lines, u < v)
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "geom/vec2.h"
#include "graph/geometric_graph.h"

namespace geospanner::io {

void write_graph(std::ostream& out, const graph::GeometricGraph& g);
[[nodiscard]] std::optional<graph::GeometricGraph> read_graph(std::istream& in);

/// File-based convenience wrappers; return false / nullopt on I/O or
/// parse failure.
bool save_graph(const std::string& path, const graph::GeometricGraph& g);
[[nodiscard]] std::optional<graph::GeometricGraph> load_graph(const std::string& path);

/// Graphviz DOT (neato-friendly: nodes carry pos="x,y!" pins).
[[nodiscard]] std::string to_dot(const graph::GeometricGraph& g,
                                 const std::string& name = "topology");

/// One fuzz-harness repro artifact: the exact (possibly shrunk) point
/// set of a failing instance plus everything needed to replay it — the
/// generator seed/mode it came from, the transmission radius, and the
/// name of the verify:: check that failed. Serialized as a single JSON
/// object with max-precision coordinates so a reload rebuilds the
/// byte-identical instance.
struct ReproCase {
    std::uint64_t seed = 0;
    std::string mode;          ///< generator mode, e.g. "cocircular"
    double radius = 0.0;       ///< UDG transmission radius
    std::string failed_check;  ///< verify:: check name, e.g. "planarity_certificate"
    std::vector<geom::Point> points;
};

/// {"seed":..,"mode":"..","radius":..,"failed_check":"..",
///  "points":[[x,y],...]}
[[nodiscard]] std::string to_json(const ReproCase& repro);
/// Parses exactly the format to_json writes; nullopt on malformed input.
[[nodiscard]] std::optional<ReproCase> repro_from_json(const std::string& json);

/// File wrappers; false / nullopt on I/O or parse failure.
bool save_repro(const std::string& path, const ReproCase& repro);
[[nodiscard]] std::optional<ReproCase> load_repro(const std::string& path);

}  // namespace geospanner::io
