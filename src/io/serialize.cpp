#include "io/serialize.h"

#include <cctype>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

namespace geospanner::io {

using graph::GeometricGraph;
using graph::NodeId;

void write_graph(std::ostream& out, const GeometricGraph& g) {
    out << "gsg 1\n" << g.node_count() << ' ' << g.edge_count() << '\n';
    out << std::setprecision(std::numeric_limits<double>::max_digits10);
    for (const auto& p : g.points()) out << p.x << ' ' << p.y << '\n';
    for (const auto& [u, v] : g.edges()) out << u << ' ' << v << '\n';
}

std::optional<GeometricGraph> read_graph(std::istream& in) {
    std::string magic;
    int version = 0;
    if (!(in >> magic >> version) || magic != "gsg" || version != 1) return std::nullopt;
    std::size_t n = 0;
    std::size_t m = 0;
    if (!(in >> n >> m)) return std::nullopt;
    std::vector<geom::Point> points(n);
    for (auto& p : points) {
        if (!(in >> p.x >> p.y)) return std::nullopt;
    }
    GeometricGraph g(std::move(points));
    for (std::size_t i = 0; i < m; ++i) {
        NodeId u = 0;
        NodeId v = 0;
        if (!(in >> u >> v) || u >= n || v >= n || u == v) return std::nullopt;
        g.add_edge(u, v);
    }
    if (g.edge_count() != m) return std::nullopt;  // Duplicate edges in input.
    return g;
}

bool save_graph(const std::string& path, const GeometricGraph& g) {
    std::ofstream file(path);
    if (!file) return false;
    write_graph(file, g);
    return static_cast<bool>(file);
}

std::optional<GeometricGraph> load_graph(const std::string& path) {
    std::ifstream file(path);
    if (!file) return std::nullopt;
    return read_graph(file);
}

std::string to_dot(const GeometricGraph& g, const std::string& name) {
    std::ostringstream out;
    out << "graph " << name << " {\n  node [shape=point];\n";
    for (NodeId v = 0; v < g.node_count(); ++v) {
        out << "  n" << v << " [pos=\"" << g.point(v).x << ',' << g.point(v).y
            << "!\"];\n";
    }
    for (const auto& [u, v] : g.edges()) {
        out << "  n" << u << " -- n" << v << ";\n";
    }
    out << "}\n";
    return out.str();
}

namespace {

/// Minimal scanner for the fixed-shape JSON to_json emits. Not a general
/// JSON parser: keys are matched literally and strings may not contain
/// escaped quotes (mode/check names never do).
class JsonScanner {
  public:
    explicit JsonScanner(const std::string& text) : text_(text) {}

    [[nodiscard]] bool find_key(const std::string& key) {
        const auto at = text_.find('"' + key + "\":");
        if (at == std::string::npos) return false;
        pos_ = at + key.size() + 3;
        return true;
    }

    [[nodiscard]] bool read_string(std::string& out) {
        if (pos_ >= text_.size() || text_[pos_] != '"') return false;
        const auto end = text_.find('"', pos_ + 1);
        if (end == std::string::npos) return false;
        out = text_.substr(pos_ + 1, end - pos_ - 1);
        pos_ = end + 1;
        return true;
    }

    template <typename T>
    [[nodiscard]] bool read_number(T& out) {
        std::istringstream in(text_.substr(pos_));
        if (!(in >> out)) return false;
        const auto consumed = in.tellg();  // -1 when the number ended the text
        pos_ = consumed < 0 ? text_.size() : pos_ + static_cast<std::size_t>(consumed);
        return true;
    }

    [[nodiscard]] bool expect(char c) {
        skip_space();
        if (pos_ >= text_.size() || text_[pos_] != c) return false;
        ++pos_;
        return true;
    }

    [[nodiscard]] bool peek_is(char c) {
        skip_space();
        return pos_ < text_.size() && text_[pos_] == c;
    }

  private:
    void skip_space() {
        while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

}  // namespace

std::string to_json(const ReproCase& repro) {
    std::ostringstream out;
    out << std::setprecision(std::numeric_limits<double>::max_digits10);
    out << "{\"seed\":" << repro.seed << ",\"mode\":\"" << repro.mode
        << "\",\"radius\":" << repro.radius << ",\"failed_check\":\""
        << repro.failed_check << "\",\"points\":[";
    for (std::size_t i = 0; i < repro.points.size(); ++i) {
        if (i > 0) out << ',';
        out << '[' << repro.points[i].x << ',' << repro.points[i].y << ']';
    }
    out << "]}";
    return out.str();
}

std::optional<ReproCase> repro_from_json(const std::string& json) {
    ReproCase repro;
    JsonScanner scan(json);
    if (!scan.find_key("seed") || !scan.read_number(repro.seed)) return std::nullopt;
    if (!scan.find_key("mode") || !scan.read_string(repro.mode)) return std::nullopt;
    if (!scan.find_key("radius") || !scan.read_number(repro.radius)) return std::nullopt;
    if (!scan.find_key("failed_check") || !scan.read_string(repro.failed_check)) {
        return std::nullopt;
    }
    if (!scan.find_key("points") || !scan.expect('[')) return std::nullopt;
    if (!scan.peek_is(']')) {
        do {
            geom::Point p;
            if (!scan.expect('[') || !scan.read_number(p.x) || !scan.expect(',') ||
                !scan.read_number(p.y) || !scan.expect(']')) {
                return std::nullopt;
            }
            repro.points.push_back(p);
        } while (scan.expect(','));
    }
    if (!scan.expect(']')) return std::nullopt;
    return repro;
}

bool save_repro(const std::string& path, const ReproCase& repro) {
    std::ofstream file(path);
    if (!file) return false;
    file << to_json(repro) << '\n';
    return static_cast<bool>(file);
}

std::optional<ReproCase> load_repro(const std::string& path) {
    std::ifstream file(path);
    if (!file) return std::nullopt;
    std::ostringstream buffer;
    buffer << file.rdbuf();
    return repro_from_json(buffer.str());
}

}  // namespace geospanner::io
