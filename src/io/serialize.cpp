#include "io/serialize.h"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

namespace geospanner::io {

using graph::GeometricGraph;
using graph::NodeId;

void write_graph(std::ostream& out, const GeometricGraph& g) {
    out << "gsg 1\n" << g.node_count() << ' ' << g.edge_count() << '\n';
    out << std::setprecision(std::numeric_limits<double>::max_digits10);
    for (const auto& p : g.points()) out << p.x << ' ' << p.y << '\n';
    for (const auto& [u, v] : g.edges()) out << u << ' ' << v << '\n';
}

std::optional<GeometricGraph> read_graph(std::istream& in) {
    std::string magic;
    int version = 0;
    if (!(in >> magic >> version) || magic != "gsg" || version != 1) return std::nullopt;
    std::size_t n = 0;
    std::size_t m = 0;
    if (!(in >> n >> m)) return std::nullopt;
    std::vector<geom::Point> points(n);
    for (auto& p : points) {
        if (!(in >> p.x >> p.y)) return std::nullopt;
    }
    GeometricGraph g(std::move(points));
    for (std::size_t i = 0; i < m; ++i) {
        NodeId u = 0;
        NodeId v = 0;
        if (!(in >> u >> v) || u >= n || v >= n || u == v) return std::nullopt;
        g.add_edge(u, v);
    }
    if (g.edge_count() != m) return std::nullopt;  // Duplicate edges in input.
    return g;
}

bool save_graph(const std::string& path, const GeometricGraph& g) {
    std::ofstream file(path);
    if (!file) return false;
    write_graph(file, g);
    return static_cast<bool>(file);
}

std::optional<GeometricGraph> load_graph(const std::string& path) {
    std::ifstream file(path);
    if (!file) return std::nullopt;
    return read_graph(file);
}

std::string to_dot(const GeometricGraph& g, const std::string& name) {
    std::ostringstream out;
    out << "graph " << name << " {\n  node [shape=point];\n";
    for (NodeId v = 0; v < g.node_count(); ++v) {
        out << "  n" << v << " [pos=\"" << g.point(v).x << ',' << g.point(v).y
            << "!\"];\n";
    }
    for (const auto& [u, v] : g.edges()) {
        out << "  n" << u << " -- n" << v << ";\n";
    }
    out << "}\n";
    return out.str();
}

}  // namespace geospanner::io
