// SVG rendering of topologies — reproduces the paper's Figures 6 and 7
// (a unit disk graph instance and each derived structure).
#pragma once

#include <string>
#include <vector>

#include "graph/geometric_graph.h"

namespace geospanner::io {

struct SvgStyle {
    double canvas = 640.0;          ///< output width/height in px
    double margin = 20.0;           ///< px border around the drawing
    double node_radius = 3.0;       ///< px
    std::string edge_color = "#555555";
    double edge_width = 1.0;
    std::string title;
};

/// Node classes get distinct markers: dominators/connectors are drawn as
/// filled squares, plain dominatees as circles (matching Figure 3's
/// legend). Pass an empty vector to draw all nodes alike.
enum class NodeClass : unsigned char {
    kPlain = 0,
    kDominator = 1,
    kConnector = 2,
};

/// Renders the graph to an SVG document string.
[[nodiscard]] std::string render_svg(const graph::GeometricGraph& g,
                                     const std::vector<NodeClass>& classes,
                                     const SvgStyle& style = {});

/// Renders and writes to a file; returns false on I/O failure.
bool write_svg(const std::string& path, const graph::GeometricGraph& g,
               const std::vector<NodeClass>& classes, const SvgStyle& style = {});

}  // namespace geospanner::io
