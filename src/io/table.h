// Aligned-column text tables for benchmark output (the Table I format
// and the per-figure data series).
#pragma once

#include <string>
#include <vector>

namespace geospanner::io {

/// Accumulates rows of string cells and formats them with aligned
/// columns. Numeric helpers format with fixed precision.
class Table {
  public:
    explicit Table(std::vector<std::string> header);

    Table& begin_row();
    Table& cell(const std::string& text);
    Table& cell(double value, int precision = 2);
    Table& cell(std::size_t value);
    /// The paper prints "-" for measurements that do not apply.
    Table& dash();

    [[nodiscard]] std::string str() const;

    /// The same data as RFC-4180-ish CSV (values quoted when they
    /// contain commas/quotes), for downstream plotting.
    [[nodiscard]] std::string csv() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// Writes `table` as CSV into $GS_BENCH_CSV_DIR/<name>.csv when that
/// environment variable is set; no-op otherwise. Returns true if a file
/// was written. Lets every bench double as a data exporter for plots.
bool maybe_write_csv(const std::string& name, const Table& table);

}  // namespace geospanner::io
