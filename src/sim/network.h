// Synchronous round-based radio network simulator.
//
// The paper's cost model charges one unit per *broadcast*: a node sends a
// message once and every 1-hop neighbor in the radio graph receives it.
// Figures 10 and 12 report the maximum and average number of broadcasts
// per node needed to build CDS, ICDS, and LDel(ICDS); this simulator
// produces those counts while executing the actual distributed protocols.
//
// Execution model: time advances in rounds. During a round each node may
// broadcast any number of messages; `advance()` then delivers every
// message to all neighbors of its sender at once. Delivery is reliable
// and in-order per sender (an idealized MAC layer, as assumed by the
// paper). Inboxes are presented sorted by sender id, so protocol
// execution is fully deterministic.
//
// The payload type is supplied by the protocol layer as a std::variant;
// per-type counters are indexed by the variant alternative index.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <variant>
#include <vector>

#include "graph/geometric_graph.h"

namespace geospanner::sim {

template <typename Payload>
class Network {
  public:
    struct Envelope {
        graph::NodeId from = 0;
        Payload payload;
    };

    static constexpr std::size_t kTypeCount = std::variant_size_v<Payload>;

    /// `radio` defines who hears whom: a broadcast by v is delivered to
    /// every neighbor of v in this graph. The graph is borrowed and must
    /// outlive the network.
    explicit Network(const graph::GeometricGraph& radio)
        : radio_(&radio),
          inboxes_(radio.node_count()),
          outboxes_(radio.node_count()),
          sent_(radio.node_count(), 0),
          units_sent_(radio.node_count(), 0),
          sent_by_type_(radio.node_count()) {}

    [[nodiscard]] std::size_t node_count() const noexcept { return radio_->node_count(); }

    /// Queues a broadcast; delivered to all radio neighbors at the next
    /// advance(). Counts one message against `from`. `units` measures
    /// the payload size in protocol-defined units (default 1): aggregate
    /// messages like neighbor lists or triangle batches pass their entry
    /// count, so units_sent() exposes the bandwidth the unit-message
    /// count hides.
    void broadcast(graph::NodeId from, Payload payload, std::size_t units = 1) {
        ++sent_[from];
        units_sent_[from] += units;
        ++sent_by_type_[from][payload.index()];
        outboxes_[from].push_back(std::move(payload));
    }

    /// Delivers all queued broadcasts; returns true if anything was
    /// delivered (i.e. the protocol is not yet quiescent).
    bool advance() {
        ++rounds_;
        for (auto& inbox : inboxes_) inbox.clear();
        bool any = false;
        // Iterate senders in id order so each inbox ends up sorted by
        // sender id — determinism for lowest-ID tie-breaking rules.
        for (graph::NodeId v = 0; v < node_count(); ++v) {
            if (outboxes_[v].empty()) continue;
            any = true;
            for (const graph::NodeId u : radio_->neighbors(v)) {
                for (const Payload& p : outboxes_[v]) {
                    inboxes_[u].push_back(Envelope{v, p});
                }
            }
            outboxes_[v].clear();
        }
        return any;
    }

    /// Messages delivered to v in the round just advanced to.
    [[nodiscard]] std::span<const Envelope> inbox(graph::NodeId v) const {
        return inboxes_[v];
    }

    [[nodiscard]] std::size_t rounds() const noexcept { return rounds_; }
    [[nodiscard]] std::size_t messages_sent(graph::NodeId v) const { return sent_[v]; }

    [[nodiscard]] std::size_t messages_sent_of_type(graph::NodeId v,
                                                    std::size_t type_index) const {
        return sent_by_type_[v][type_index];
    }

    [[nodiscard]] std::size_t total_messages() const noexcept {
        std::size_t total = 0;
        for (const std::size_t s : sent_) total += s;
        return total;
    }

    /// Per-node totals (for max/avg communication-cost statistics).
    [[nodiscard]] const std::vector<std::size_t>& per_node_sent() const noexcept {
        return sent_;
    }

    /// Payload units sent by v (== messages_sent(v) when every message
    /// has unit weight).
    [[nodiscard]] std::size_t units_sent(graph::NodeId v) const { return units_sent_[v]; }
    [[nodiscard]] const std::vector<std::size_t>& per_node_units() const noexcept {
        return units_sent_;
    }

  private:
    const graph::GeometricGraph* radio_;
    std::vector<std::vector<Envelope>> inboxes_;
    std::vector<std::vector<Payload>> outboxes_;
    std::vector<std::size_t> sent_;
    std::vector<std::size_t> units_sent_;
    std::vector<std::array<std::size_t, kTypeCount>> sent_by_type_;
    std::size_t rounds_ = 0;
};

}  // namespace geospanner::sim
