// Event-driven asynchronous radio network.
//
// The paper notes its clustering protocol "can also be implemented using
// asynchronous communications" provided each node knows its neighbor
// count. This simulator makes that claim testable: a broadcast is
// delivered to each neighbor after an independent, deterministic-random
// delay, and handlers run in global timestamp order — so different delay
// seeds exercise different interleavings. The async clustering protocol
// must produce the same maximal independent set under every
// interleaving (see protocol/async_clustering.h).
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "graph/geometric_graph.h"
#include "random/rng.h"

namespace geospanner::sim {

template <typename Payload>
class AsyncNetwork {
  public:
    struct Envelope {
        graph::NodeId from = 0;
        Payload payload;
    };

    /// Per-message-per-receiver delays are uniform in (0, max_delay],
    /// drawn from `seed` — rerunning with the same seed reproduces the
    /// exact event order.
    AsyncNetwork(const graph::GeometricGraph& radio, std::uint64_t seed,
                 double max_delay = 1.0)
        : radio_(&radio),
          rng_(seed),
          max_delay_(max_delay),
          sent_(radio.node_count(), 0) {}

    [[nodiscard]] std::size_t node_count() const noexcept { return radio_->node_count(); }
    [[nodiscard]] double now() const noexcept { return now_; }
    [[nodiscard]] std::size_t messages_sent(graph::NodeId v) const { return sent_[v]; }
    [[nodiscard]] const std::vector<std::size_t>& per_node_sent() const noexcept {
        return sent_;
    }
    [[nodiscard]] std::size_t total_messages() const noexcept {
        std::size_t total = 0;
        for (const std::size_t s : sent_) total += s;
        return total;
    }

    /// Queues one broadcast: each radio neighbor receives an independent
    /// copy at now + uniform(0, max_delay]. Counts one message.
    void broadcast(graph::NodeId from, Payload payload) {
        ++sent_[from];
        for (const graph::NodeId to : radio_->neighbors(from)) {
            const double delay = rng_.uniform01() * max_delay_ + 1e-9;
            events_.push(Event{now_ + delay, next_seq_++, to,
                               Envelope{from, payload}});
        }
    }

    /// Runs the event loop to quiescence: pops deliveries in timestamp
    /// order and invokes handler(to, envelope); the handler may call
    /// broadcast() to schedule more. Returns the number of deliveries.
    template <typename Handler>
    std::size_t run(Handler&& handler) {
        std::size_t delivered = 0;
        while (!events_.empty()) {
            const Event event = events_.top();
            events_.pop();
            now_ = event.time;
            ++delivered;
            handler(event.to, event.envelope);
        }
        return delivered;
    }

  private:
    struct Event {
        double time = 0.0;
        std::uint64_t seq = 0;  ///< Tie-break: delivery creation order.
        graph::NodeId to = 0;
        Envelope envelope;

        friend bool operator>(const Event& a, const Event& b) {
            if (a.time != b.time) return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    const graph::GeometricGraph* radio_;
    rnd::Xoshiro256 rng_;
    double max_delay_;
    double now_ = 0.0;
    std::uint64_t next_seq_ = 0;
    std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
    std::vector<std::size_t> sent_;
};

}  // namespace geospanner::sim
