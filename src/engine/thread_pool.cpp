#include "engine/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace geospanner::engine {

namespace {
thread_local bool t_on_worker = false;
}  // namespace

struct ThreadPool::Impl {
    std::size_t lanes = 1;

    /// Serializes external drivers: held for the whole span of one
    /// parallel_for so two threads sharing a pool (e.g. the service
    /// ingest worker and a snapshot reader) never clobber each other's
    /// active job. Reentrant calls from worker lanes never take it —
    /// they run inline.
    std::mutex drive_mutex;

    std::mutex mutex;
    std::condition_variable job_cv;   ///< workers wait here for a generation bump
    std::condition_variable done_cv;  ///< the caller waits here for workers_done

    // Current job, valid while generation is the latest one a worker saw.
    const std::function<void(std::size_t)>* body = nullptr;
    std::size_t end = 0;
    std::size_t chunk = 1;
    std::atomic<std::size_t> next{0};
    std::uint64_t generation = 0;
    std::size_t workers_done = 0;
    std::exception_ptr first_error;

    bool stopping = false;
    std::vector<std::thread> workers;

    /// Grabs chunks until the index range is drained. Runs on workers
    /// and on the calling thread alike.
    void drain() {
        while (true) {
            const std::size_t lo = next.fetch_add(chunk, std::memory_order_relaxed);
            if (lo >= end) return;
            const std::size_t hi = std::min(end, lo + chunk);
            try {
                for (std::size_t i = lo; i < hi; ++i) (*body)(i);
            } catch (...) {
                next.store(end, std::memory_order_relaxed);  // Curtail other lanes.
                const std::lock_guard<std::mutex> lock(mutex);
                if (!first_error) first_error = std::current_exception();
                return;
            }
        }
    }

    void worker_loop() {
        t_on_worker = true;
        std::uint64_t seen = 0;
        while (true) {
            {
                std::unique_lock<std::mutex> lock(mutex);
                job_cv.wait(lock, [&] { return stopping || generation != seen; });
                if (stopping) return;
                seen = generation;
            }
            drain();
            {
                const std::lock_guard<std::mutex> lock(mutex);
                if (++workers_done == workers.size()) done_cv.notify_one();
            }
        }
    }
};

ThreadPool::ThreadPool(std::size_t threads) : impl_(std::make_unique<Impl>()) {
    if (threads == 0) {
        threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    impl_->lanes = threads;
    impl_->workers.reserve(threads - 1);
    for (std::size_t i = 0; i + 1 < threads; ++i) {
        impl_->workers.emplace_back([impl = impl_.get()] { impl->worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard<std::mutex> lock(impl_->mutex);
        impl_->stopping = true;
    }
    impl_->job_cv.notify_all();
    for (auto& w : impl_->workers) w.join();
}

std::size_t ThreadPool::thread_count() const noexcept { return impl_->lanes; }

bool ThreadPool::on_worker_thread() noexcept { return t_on_worker; }

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
    if (begin >= end) return;
    const std::size_t count = end - begin;
    if (impl_->workers.empty() || t_on_worker || count == 1) {
        for (std::size_t i = begin; i < end; ++i) body(i);
        return;
    }

    // One external driver at a time; released when this loop (and any
    // rethrown body exception) leaves the function.
    const std::lock_guard<std::mutex> drive(impl_->drive_mutex);

    {
        const std::lock_guard<std::mutex> lock(impl_->mutex);
        impl_->body = &body;
        impl_->end = end;
        impl_->chunk = std::max<std::size_t>(1, count / (impl_->lanes * 8));
        impl_->next.store(begin, std::memory_order_relaxed);
        impl_->workers_done = 0;
        impl_->first_error = nullptr;
        ++impl_->generation;
    }
    impl_->job_cv.notify_all();

    // The calling thread is a lane too. While it runs bodies, flag it as
    // a worker so reentrant parallel_for calls from inside a body run
    // inline instead of clobbering the active job.
    t_on_worker = true;
    impl_->drain();
    t_on_worker = false;

    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->done_cv.wait(lock,
                        [&] { return impl_->workers_done == impl_->workers.size(); });
    impl_->body = nullptr;
    if (impl_->first_error) {
        const std::exception_ptr error = impl_->first_error;
        impl_->first_error = nullptr;
        lock.unlock();
        std::rethrow_exception(error);
    }
}

}  // namespace geospanner::engine
