// Fixed-size thread pool with a deterministic-by-construction
// parallel_for primitive.
//
// The pool never makes scheduling visible to its callers: parallel_for
// invokes `body(i)` exactly once for every index, bodies write only to
// index-owned slots (the caller's contract), and the merge of those
// slots happens on the calling thread after the loop — so results are
// identical for any thread count, which is what lets the engine promise
// edge-for-edge equality with the sequential pipeline.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace geospanner::engine {

class ThreadPool {
  public:
    /// Spawns `threads - 1` workers (the calling thread is the remaining
    /// lane); `threads == 0` uses the hardware concurrency.
    explicit ThreadPool(std::size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Total lanes (workers + the calling thread).
    [[nodiscard]] std::size_t thread_count() const noexcept;

    /// Calls body(i) once for every i in [begin, end), distributing
    /// contiguous chunks over all lanes; returns after every call
    /// finished. The first exception thrown by a body is rethrown on the
    /// calling thread (remaining indices may or may not run).
    ///
    /// Bodies run concurrently: they must only read shared state and
    /// write to per-index locations. Invocation order is unspecified —
    /// never encode results in scheduling order.
    ///
    /// Reentrant calls (from inside a body) run inline on the calling
    /// worker, so nested parallelism degrades gracefully instead of
    /// deadlocking. Concurrent external drivers are serialized on an
    /// internal mutex: a second thread calling parallel_for blocks until
    /// the first loop finished, so a long-running ingest worker
    /// (service::SpannerService) and a snapshot reader rebuilding a
    /// reference can share one engine without coordination.
    void parallel_for(std::size_t begin, std::size_t end,
                      const std::function<void(std::size_t)>& body);

    /// True when the calling thread is a pool worker (used to run nested
    /// parallel_for calls inline).
    [[nodiscard]] static bool on_worker_thread() noexcept;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

}  // namespace geospanner::engine
