// Batch construction: many workload instances, one pool — the
// "serve many requests" shape. Instances are independent, so the batch
// parallelizes across them: each instance is claimed by a lane and built
// with its stages running inline on that lane (nested parallel_for
// degrades to sequential), which keeps every instance's output identical
// to a standalone build. Results land in input order.
#pragma once

#include <optional>
#include <vector>

#include "core/backbone.h"
#include "core/report.h"
#include "core/workload.h"
#include "engine/engine.h"
#include "engine/thread_pool.h"

namespace geospanner::engine {

/// One batch entry's output. `udg` is nullopt when the workload's
/// connectivity rejection budget was exhausted (backbone is then empty).
struct BatchResult {
    std::optional<graph::GeometricGraph> udg;
    core::Backbone backbone;
    core::PipelineStats stats;
};

/// Constructs every config's topology concurrently on `pool`. Each
/// instance draws uniform deployments until the UDG is connected (the
/// core::random_connected_udg contract), then runs the staged pipeline.
/// result[i] depends only on configs[i] — never on thread count or
/// scheduling.
[[nodiscard]] std::vector<BatchResult> build_batch(
    ThreadPool& pool, const std::vector<core::WorkloadConfig>& configs,
    const EngineOptions& options = {});

/// Convenience overload on an engine's own pool and options.
[[nodiscard]] std::vector<BatchResult> build_batch(
    SpannerEngine& engine, const std::vector<core::WorkloadConfig>& configs);

}  // namespace geospanner::engine
