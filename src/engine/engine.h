// Batched, multi-threaded spanner-construction pipeline.
//
// The paper's construction is node-local at every step — O(1) messages
// and O(d log d) computation per node — so the engine parallelizes the
// per-node work inside each stage: grid-cell UDG edge generation,
// per-candidate connector evaluation, per-node 1-hop local Delaunay
// computation, and the per-triangle Algorithm-3 survival test.
//
// Determinism contract: for any thread count, the engine produces
// edge-for-edge identical output to the sequential centralized path
// (`proximity::build_udg` + `core::build_backbone` with
// Engine::kCentralized). Parallel loops write only index-owned slots and
// results are merged in node order on the calling thread; nothing ever
// depends on scheduling order. tests/test_engine.cpp asserts the
// equality across thread counts, seeds, and workload shapes.
//
// Each stage records wall time, items processed, and thread count into
// a core::PipelineStats report.
#pragma once

#include <cstddef>
#include <vector>

#include "core/backbone.h"
#include "core/report.h"
#include "engine/thread_pool.h"
#include "graph/geometric_graph.h"
#include "verify/audit.h"

namespace geospanner::engine {

/// Tunables of the incremental maintenance path (dynamic::DynamicSpanner).
struct IncrementalOptions {
    /// Per-component rebuild gate: an update batch is decomposed into
    /// connected dirty components, and only a *single component* whose
    /// dirty region exceeds this fraction of n forces the full-rebuild
    /// path. A batch of many small, far-apart updates therefore stays on
    /// the localized path even when the union of its dirty regions is
    /// large — the union was never the right cost proxy, since disjoint
    /// components are patched independently.
    double rebuild_fraction = 0.25;
    /// Whole-batch gate: when the union of all dirty regions (or the
    /// cluster cascade's flip count) exceeds this fraction of n, the
    /// batch takes the full-rebuild path regardless of how it splits
    /// into components — past roughly half the graph, even perfectly
    /// parallel localized patching loses to one parallel rebuild.
    double total_rebuild_fraction = 0.5;
    /// Dirty components whose seed sets lie within this many hops (over
    /// the union of pre- and post-batch adjacency) are merged before
    /// patching. The per-stage dirty expansions reach at most 7 hops
    /// past a component's seeds, so any value >= 8 keeps the planned
    /// write/read sets of distinct components disjoint; values below
    /// that are clamped. Larger margins only trade parallelism for
    /// safety slack.
    std::size_t component_merge_hops = 12;
};

struct EngineOptions {
    std::size_t threads = 0;  ///< 0 → hardware concurrency
    protocol::ClusterPolicy cluster_policy = protocol::ClusterPolicy::kLowestId;
    core::Planarizer planarizer = core::Planarizer::kLdel1;
    /// Opt-in post-stage verification: after the clustering, connector,
    /// ICDS, and LDel stages the engine runs the matching verify::
    /// checkers and appends a StageAudit to the result's trail. Audits
    /// are read-only — output is edge-identical with audits on or off at
    /// any thread count (test_engine.cpp pins this).
    bool audit = false;
    verify::AuditOptions audit_options;  ///< caps used when audit is on
    /// Consumed by dynamic::DynamicSpanner: when true, update batches
    /// are patched by localized recomputation of the dirty region; when
    /// false every batch takes the full-rebuild path (the baseline mode
    /// the benches compare against). Ignored by plain builds.
    bool incremental = true;
    IncrementalOptions incremental_options;
};

/// One constructed instance: the UDG, every backbone topology, the
/// stage timing breakdown, and (when EngineOptions::audit) the
/// per-stage invariant certificates.
struct BuildResult {
    graph::GeometricGraph udg;
    core::Backbone backbone;
    core::PipelineStats stats;
    verify::AuditTrail audit;  ///< empty unless EngineOptions::audit
};

/// UDG stage on `pool`'s lanes: the per-node grid-cell scan runs in
/// parallel, the edge merge happens in node order. Identical output to
/// proximity::build_udg. Appends "grid" (spatial-grid / Morton reorder
/// cost) and "udg" (neighbor scans) stages to `stats` when given.
[[nodiscard]] graph::GeometricGraph build_udg_staged(ThreadPool& pool,
                                                     std::vector<geom::Point> points,
                                                     double radius,
                                                     core::PipelineStats* stats = nullptr);

/// Clustering → connectors → ICDS → LDel → planarize → assemble over an
/// existing UDG, parallelizing the per-node work of each stage on
/// `pool`'s lanes. Identical output to core::build_backbone with
/// Engine::kCentralized (message stats stay empty, as there). Appends
/// one StageStats entry per stage to `stats` when given. When
/// `options.audit` and `trail` are both set, runs the post-stage
/// verify:: audits and appends their StageAudits to `trail`.
[[nodiscard]] core::Backbone build_backbone_staged(ThreadPool& pool,
                                                   const graph::GeometricGraph& udg,
                                                   const EngineOptions& options,
                                                   core::PipelineStats* stats = nullptr,
                                                   verify::AuditTrail* trail = nullptr);

/// The pipeline from the connector stage on, over an externally supplied
/// clustering — the seam the tile-sharded builder (src/shard) plugs
/// into: the MIS election is the one stage whose decision chains are not
/// O(1)-hop local (a lowest-id chain propagates roles arbitrarily far),
/// so the sharded engine elects roles once on the merged UDG and runs
/// this per tile with the cluster state restricted to the tile's halo
/// region. build_backbone_staged is exactly cluster_reference + this
/// call. No clustering StageStats/StageAudit entry is appended here;
/// the caller owns that stage.
[[nodiscard]] core::Backbone build_backbone_from_cluster(
    ThreadPool& pool, const graph::GeometricGraph& udg,
    protocol::ClusterState cluster, const EngineOptions& options,
    core::PipelineStats* stats = nullptr, verify::AuditTrail* trail = nullptr);

/// Facade owning the pool: one engine, many builds.
class SpannerEngine {
  public:
    explicit SpannerEngine(EngineOptions options = {});

    [[nodiscard]] std::size_t thread_count() const noexcept {
        return pool_.thread_count();
    }
    [[nodiscard]] const EngineOptions& options() const noexcept { return options_; }
    [[nodiscard]] ThreadPool& pool() noexcept { return pool_; }

    /// Full pipeline from raw node positions.
    [[nodiscard]] BuildResult build(std::vector<geom::Point> points, double radius);

    /// Staged pipeline over an existing UDG (no UDG stage). `trail`
    /// receives the post-stage audit certificates when the engine was
    /// configured with EngineOptions::audit.
    [[nodiscard]] core::Backbone build_backbone(const graph::GeometricGraph& udg,
                                                core::PipelineStats* stats = nullptr,
                                                verify::AuditTrail* trail = nullptr);

  private:
    EngineOptions options_;
    ThreadPool pool_;
};

}  // namespace geospanner::engine
