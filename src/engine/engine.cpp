#include "engine/engine.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <utility>

#include "protocol/clustering.h"
#include "protocol/connectors.h"
#include "proximity/cell_grid.h"
#include "proximity/classic.h"
#include "proximity/ldel.h"
#include "proximity/ldel_k.h"

namespace geospanner::engine {

using graph::GeometricGraph;
using graph::NodeId;
using proximity::TriangleKey;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

void push_stage(core::PipelineStats* stats, const char* name, Clock::time_point start,
                std::size_t items, std::size_t threads) {
    if (stats == nullptr) return;
    stats->stages.push_back({name, ms_since(start), items, threads});
}

/// Lanes a stage actually runs at: nested calls (batch workers) execute
/// their parallel_for inline on one lane.
std::size_t stage_threads(const ThreadPool& pool) {
    return ThreadPool::on_worker_thread() ? 1 : pool.thread_count();
}

// ---- Connector stage -------------------------------------------------
//
// Mirrors protocol::find_connectors with the per-candidate audibility
// election evaluated in parallel: candidate lists per dominator pair are
// flat (pair, candidate) entry vectors sorted and grouped by pair —
// tree maps and per-pair node allocations were a measurable share of
// the stage — each group's winners are decided independently, and
// winners are merged back in pair order. The determinism tests assert
// bit-identical ConnectorState.

using DominatorPair = std::pair<NodeId, NodeId>;

/// Candidates for many dominator pairs in one contiguous buffer:
/// `entries` sorted by (pair, candidate), `offsets` delimiting the
/// per-pair groups (group g = entries[offsets[g], offsets[g+1])).
struct CandidateGroups {
    std::vector<std::pair<DominatorPair, NodeId>> entries;
    std::vector<std::uint32_t> offsets;

    /// Sorts entries and rebuilds the group index. Entry lists are
    /// duplicate-free ((pair, w) is pushed at most once per phase), so
    /// the unstable sort is deterministic.
    void finish() {
        std::sort(entries.begin(), entries.end());
        offsets.clear();
        for (std::uint32_t i = 0; i < entries.size(); ++i) {
            if (i == 0 || entries[i].first != entries[i - 1].first) offsets.push_back(i);
        }
        offsets.push_back(static_cast<std::uint32_t>(entries.size()));
    }

    [[nodiscard]] std::size_t group_count() const {
        return offsets.empty() ? 0 : offsets.size() - 1;
    }
};

/// Winners of every group: candidate w wins iff no smaller-id candidate
/// for the same pair is UDG-adjacent. Candidates ascend within a group,
/// so the beaten scan is exactly the prefix before w.
std::vector<std::vector<NodeId>> elect_winners(ThreadPool& pool, const GeometricGraph& udg,
                                               const CandidateGroups& groups) {
    std::vector<std::vector<NodeId>> winners(groups.group_count());
    pool.parallel_for(0, groups.group_count(), [&](std::size_t g) {
        const std::uint32_t begin = groups.offsets[g];
        const std::uint32_t end = groups.offsets[g + 1];
        for (std::uint32_t k = begin; k < end; ++k) {
            const NodeId w = groups.entries[k].second;
            bool beaten = false;
            for (std::uint32_t j = begin; j < k && !beaten; ++j) {
                beaten = udg.has_edge(groups.entries[j].second, w);
            }
            if (!beaten) winners[g].push_back(w);
        }
    });
    return winners;
}

void add_edge_once(std::vector<DominatorPair>& edges, NodeId a, NodeId b) {
    edges.push_back({std::min(a, b), std::max(a, b)});
}

protocol::ConnectorState parallel_connectors(ThreadPool& pool, const GeometricGraph& udg,
                                             const protocol::ClusterState& cluster,
                                             std::size_t* items) {
    const auto n = static_cast<NodeId>(udg.node_count());
    std::vector<bool> connector(n, false);
    std::vector<DominatorPair> edges;
    *items = 0;

    // Phase A: dominators two hops apart; candidates are dominatees
    // adjacent to both.
    CandidateGroups two_hop;
    for (NodeId w = 0; w < n; ++w) {
        const auto doms = cluster.dominators(w);
        for (std::size_t i = 0; i < doms.size(); ++i) {
            for (std::size_t j = i + 1; j < doms.size(); ++j) {
                two_hop.entries.push_back({{doms[i], doms[j]}, w});
            }
        }
    }
    two_hop.finish();
    *items += two_hop.entries.size();
    {
        const auto winners = elect_winners(pool, udg, two_hop);
        for (std::size_t g = 0; g < winners.size(); ++g) {
            const DominatorPair pair = two_hop.entries[two_hop.offsets[g]].first;
            for (const NodeId w : winners[g]) {
                connector[w] = true;
                add_edge_once(edges, pair.first, w);
                add_edge_once(edges, w, pair.second);
            }
        }
    }

    // Phase B: first leg of three-hop connections (ordered pairs u → v).
    CandidateGroups first_leg;
    for (NodeId w = 0; w < n; ++w) {
        for (const NodeId u : cluster.dominators(w)) {
            for (const NodeId v : cluster.two_hop_dominators(w)) {
                first_leg.entries.push_back({{u, v}, w});
            }
        }
    }
    first_leg.finish();
    *items += first_leg.entries.size();
    const auto first_winners = elect_winners(pool, udg, first_leg);
    for (std::size_t g = 0; g < first_winners.size(); ++g) {
        const DominatorPair pair = first_leg.entries[first_leg.offsets[g]].first;
        for (const NodeId w : first_winners[g]) {
            connector[w] = true;
            add_edge_once(edges, pair.first, w);
        }
    }

    // Phase C: second leg — dominatees of v audible from a first-leg
    // winner. `audible` records (pair, x, w) for every audible (winner
    // w, dominatee x) incidence; the candidate set per pair is the
    // deduplicated x column.
    std::vector<std::pair<std::pair<DominatorPair, NodeId>, NodeId>> audible;
    CandidateGroups second_leg;
    for (std::size_t g = 0; g < first_winners.size(); ++g) {
        const DominatorPair pair = first_leg.entries[first_leg.offsets[g]].first;
        for (const NodeId w : first_winners[g]) {
            for (const NodeId x : udg.neighbors(w)) {
                const auto doms = cluster.dominators(x);
                if (std::binary_search(doms.begin(), doms.end(), pair.second)) {
                    audible.push_back({{pair, x}, w});
                }
            }
        }
    }
    std::sort(audible.begin(), audible.end());
    for (std::size_t i = 0; i < audible.size(); ++i) {
        if (i == 0 || audible[i].first != audible[i - 1].first) {
            second_leg.entries.push_back(audible[i].first);
        }
    }
    second_leg.finish();
    *items += second_leg.entries.size();
    {
        const auto winners = elect_winners(pool, udg, second_leg);
        for (std::size_t g = 0; g < winners.size(); ++g) {
            const DominatorPair pair = second_leg.entries[second_leg.offsets[g]].first;
            for (const NodeId x : winners[g]) {
                connector[x] = true;
                add_edge_once(edges, x, pair.second);
                const auto range = std::equal_range(
                    audible.begin(), audible.end(),
                    std::pair{std::pair{pair, x}, NodeId{0}},
                    [](const auto& a, const auto& b) { return a.first < b.first; });
                for (auto it = range.first; it != range.second; ++it) {
                    add_edge_once(edges, x, it->second);
                }
            }
        }
    }

    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    protocol::ConnectorState state;
    state.is_connector = std::move(connector);
    state.cds_edges = std::move(edges);
    return state;
}

// ---- ICDS stage ------------------------------------------------------

GeometricGraph parallel_induce(ThreadPool& pool, const GeometricGraph& udg,
                               const std::vector<bool>& in_backbone) {
    const auto n = static_cast<NodeId>(udg.node_count());
    std::vector<std::vector<NodeId>> kept(n);
    pool.parallel_for(0, n, [&](std::size_t v) {
        if (!in_backbone[v]) return;
        for (const NodeId u : udg.neighbors(static_cast<NodeId>(v))) {
            if (u > v && in_backbone[u]) kept[v].push_back(u);
        }
    });
    // kept[v] inherits the adjacency order (ascending), so the
    // concatenation is lexicographic — bulk construction applies.
    std::vector<std::pair<NodeId, NodeId>> edges;
    for (NodeId v = 0; v < n; ++v) {
        for (const NodeId u : kept[v]) edges.emplace_back(v, u);
    }
    return GeometricGraph::from_edges(udg.points(), edges);
}

// ---- LDel stage ------------------------------------------------------

/// LDel⁽¹⁾ triangles via the per-node kernel, node loops in parallel.
/// Same filter as proximity::ldel1_triangles: a triangle survives iff it
/// appears in the local Delaunay triangulation of all three vertices.
std::vector<TriangleKey> parallel_ldel1_triangles(ThreadPool& pool,
                                                  const GeometricGraph& icds) {
    const auto n = static_cast<NodeId>(icds.node_count());
    std::vector<std::vector<TriangleKey>> local(n);
    pool.parallel_for(0, n, [&](std::size_t u) {
        // One triangulation arena per lane, reused across nodes and
        // builds: the per-node local Delaunay cost is allocator-bound
        // without it. Results are independent of scratch history.
        thread_local proximity::LocalDelaunayScratch scratch;
        proximity::local_triangles_at(icds, static_cast<NodeId>(u), scratch, local[u]);
    });

    std::vector<std::vector<TriangleKey>> mine(n);
    pool.parallel_for(0, n, [&](std::size_t u) {
        for (const auto& t : local[u]) {
            if (t.a != u) continue;  // Count each triangle once, at its least vertex.
            if (std::binary_search(local[t.b].begin(), local[t.b].end(), t) &&
                std::binary_search(local[t.c].begin(), local[t.c].end(), t)) {
                mine[u].push_back(t);
            }
        }
    });

    // Concatenating in node order yields the globally sorted set (the
    // least vertex is the leading key component).
    std::vector<TriangleKey> result;
    for (NodeId u = 0; u < n; ++u) {
        result.insert(result.end(), mine[u].begin(), mine[u].end());
    }
    return result;
}

std::vector<TriangleKey> parallel_planarize(ThreadPool& pool, const GeometricGraph& icds,
                                            std::vector<TriangleKey> triangles) {
    const proximity::Alg3Filter filter(icds, std::move(triangles));
    std::vector<TriangleKey> kept;
    if (pool.thread_count() <= 1) {
        // Single lane: the pair-at-a-time removal scan marks both sides
        // of each intersecting pair once, halving the geometry tests.
        // keeps(i) == !removed[i] by the Alg3Filter contract, so the
        // output matches the parallel path bit for bit.
        std::vector<char> removed;
        filter.removal_scan(removed);
        for (std::size_t i = 0; i < filter.size(); ++i) {
            if (!removed[i]) kept.push_back(filter.triangles()[i]);
        }
        return kept;
    }
    std::vector<char> keep(filter.size(), 0);
    pool.parallel_for(0, filter.size(),
                      [&](std::size_t i) { keep[i] = filter.keeps(i) ? 1 : 0; });
    for (std::size_t i = 0; i < filter.size(); ++i) {
        if (keep[i]) kept.push_back(filter.triangles()[i]);
    }
    return kept;
}

}  // namespace

GeometricGraph build_udg_staged(ThreadPool& pool, std::vector<geom::Point> points,
                                double radius, core::PipelineStats* stats) {
    auto start = Clock::now();
    const auto n = static_cast<NodeId>(points.size());
    if (n == 0 || radius <= 0.0) {
        push_stage(stats, "grid", start, n, 1);
        push_stage(stats, "udg", start, n, stage_threads(pool));
        return GeometricGraph(std::move(points));
    }

    // The grid build is the Morton permutation of the point set (cells
    // ordered by Morton code, coordinates gathered into slot order) —
    // reported as its own stage so the reorder cost is visible next to
    // the scans it accelerates.
    const proximity::CompactCellGrid grid(points, radius);
    push_stage(stats, "grid", start, n, 1);

    start = Clock::now();
    const double r2 = radius * radius;
    std::vector<std::vector<NodeId>> above(n);
    pool.parallel_for(0, n, [&](std::size_t v) {
        grid.for_neighbors_above(points[v], static_cast<NodeId>(v), r2,
                                 [&](NodeId u) { above[v].push_back(u); });
        std::sort(above[v].begin(), above[v].end());
    });
    std::size_t total = 0;
    for (const auto& list : above) total += list.size();
    std::vector<std::pair<NodeId, NodeId>> edges;
    edges.reserve(total);
    for (NodeId v = 0; v < n; ++v) {
        for (const NodeId u : above[v]) edges.emplace_back(v, u);
    }
    GeometricGraph g = GeometricGraph::from_edges(std::move(points), edges);
    push_stage(stats, "udg", start, n, stage_threads(pool));
    return g;
}

core::Backbone build_backbone_staged(ThreadPool& pool, const GeometricGraph& udg,
                                     const EngineOptions& options,
                                     core::PipelineStats* stats,
                                     verify::AuditTrail* trail) {
    const auto start = Clock::now();
    protocol::ClusterState cluster =
        protocol::cluster_reference(udg, options.cluster_policy);
    push_stage(stats, "clustering", start, udg.node_count(), 1);
    if (options.audit && trail != nullptr) {
        trail->stages.push_back(
            verify::audit_clustering(udg, cluster, options.audit_options));
    }
    return build_backbone_from_cluster(pool, udg, std::move(cluster), options, stats,
                                       trail);
}

core::Backbone build_backbone_from_cluster(ThreadPool& pool, const GeometricGraph& udg,
                                           protocol::ClusterState cluster,
                                           const EngineOptions& options,
                                           core::PipelineStats* stats,
                                           verify::AuditTrail* trail) {
    const auto n = static_cast<NodeId>(udg.node_count());
    const std::size_t lanes = stage_threads(pool);
    const bool audit = options.audit && trail != nullptr;
    core::Backbone result;
    result.cluster = std::move(cluster);

    auto start = Clock::now();
    std::size_t candidate_items = 0;
    protocol::ConnectorState connectors =
        parallel_connectors(pool, udg, result.cluster, &candidate_items);
    push_stage(stats, "connectors", start, candidate_items, lanes);
    if (audit) {
        trail->stages.push_back(verify::audit_connectors(
            udg, result.cluster, connectors.cds_edges, options.audit_options));
    }

    start = Clock::now();
    result.in_backbone.assign(n, false);
    for (NodeId v = 0; v < n; ++v) {
        result.in_backbone[v] =
            result.cluster.is_dominator(v) || connectors.is_connector[v];
    }
    result.icds = parallel_induce(pool, udg, result.in_backbone);
    push_stage(stats, "icds", start, n, lanes);
    if (audit) {
        trail->stages.push_back(verify::audit_icds(udg, result.in_backbone,
                                                   result.icds, options.audit_options));
    }

    if (options.planarizer == core::Planarizer::kLdel1) {
        start = Clock::now();
        std::vector<TriangleKey> triangles = parallel_ldel1_triangles(pool, result.icds);
        push_stage(stats, "ldel", start, result.backbone_size(), lanes);

        start = Clock::now();
        const std::size_t triangle_count = triangles.size();
        result.ldel_triangles =
            parallel_planarize(pool, result.icds, std::move(triangles));
        push_stage(stats, "planarize", start, triangle_count, lanes);
    } else {
        start = Clock::now();
        result.ldel_triangles = proximity::ldel_k_triangles(result.icds, 2);
        push_stage(stats, "ldel", start, result.backbone_size(), 1);
    }

    start = Clock::now();
    result.ldel_icds = proximity::build_gabriel(result.icds);
    for (const auto& t : result.ldel_triangles) {
        result.ldel_icds.add_edge(t.a, t.b);
        result.ldel_icds.add_edge(t.b, t.c);
        result.ldel_icds.add_edge(t.a, t.c);
    }

    result.is_connector = connectors.is_connector;
    // cds_edges is sorted and duplicate-free by the connector stage's
    // contract, exactly the bulk constructor's precondition.
    result.cds = GeometricGraph::from_edges(udg.points(), connectors.cds_edges);

    result.cds_prime = core::with_dominatee_links(result.cds, result.cluster);
    result.icds_prime = core::with_dominatee_links(result.icds, result.cluster);
    result.ldel_icds_prime =
        core::with_dominatee_links(result.ldel_icds, result.cluster);
    push_stage(stats, "assemble", start, n, 1);
    if (audit) {
        // The LDel audit certifies the planarized graphs, so it runs
        // once they are assembled.
        trail->stages.push_back(verify::audit_ldel(udg, result, options.audit_options));
    }
    return result;
}

SpannerEngine::SpannerEngine(EngineOptions options)
    : options_(options), pool_(options.threads) {}

BuildResult SpannerEngine::build(std::vector<geom::Point> points, double radius) {
    BuildResult result;
    result.udg = build_udg_staged(pool_, std::move(points), radius, &result.stats);
    result.backbone = build_backbone_staged(pool_, result.udg, options_, &result.stats,
                                            &result.audit);
    return result;
}

core::Backbone SpannerEngine::build_backbone(const GeometricGraph& udg,
                                             core::PipelineStats* stats,
                                             verify::AuditTrail* trail) {
    return build_backbone_staged(pool_, udg, options_, stats, trail);
}

}  // namespace geospanner::engine
