#include "engine/engine.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <utility>

#include "protocol/clustering.h"
#include "protocol/connectors.h"
#include "proximity/cell_grid.h"
#include "proximity/classic.h"
#include "proximity/ldel.h"
#include "proximity/ldel_k.h"

namespace geospanner::engine {

using graph::GeometricGraph;
using graph::NodeId;
using proximity::TriangleKey;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

void push_stage(core::PipelineStats* stats, const char* name, Clock::time_point start,
                std::size_t items, std::size_t threads) {
    if (stats == nullptr) return;
    stats->stages.push_back({name, ms_since(start), items, threads});
}

/// Lanes a stage actually runs at: nested calls (batch workers) execute
/// their parallel_for inline on one lane.
std::size_t stage_threads(const ThreadPool& pool) {
    return ThreadPool::on_worker_thread() ? 1 : pool.thread_count();
}

// ---- Connector stage -------------------------------------------------
//
// Mirrors protocol::find_connectors with the per-candidate audibility
// election evaluated in parallel: candidate lists per dominator pair are
// built sequentially (cheap, deterministic), each list's winners are
// decided independently per entry, and winners are merged back in pair
// order. The determinism tests assert bit-identical ConnectorState.

using DominatorPair = std::pair<NodeId, NodeId>;
using CandidateMap = std::map<DominatorPair, std::vector<NodeId>>;

/// Winners of every entry: candidate w wins iff no smaller-id candidate
/// for the same pair is UDG-adjacent. Pure per-entry computation.
std::vector<std::vector<NodeId>> elect_winners(ThreadPool& pool, const GeometricGraph& udg,
                                               const CandidateMap& candidates) {
    std::vector<const CandidateMap::value_type*> entries;
    entries.reserve(candidates.size());
    for (const auto& entry : candidates) entries.push_back(&entry);

    std::vector<std::vector<NodeId>> winners(entries.size());
    pool.parallel_for(0, entries.size(), [&](std::size_t i) {
        const auto& cands = entries[i]->second;
        for (const NodeId w : cands) {
            const bool beaten = std::any_of(cands.begin(), cands.end(), [&](NodeId c) {
                return c < w && udg.has_edge(c, w);
            });
            if (!beaten) winners[i].push_back(w);
        }
    });
    return winners;
}

std::size_t candidate_count(const CandidateMap& m) {
    std::size_t total = 0;
    for (const auto& [pair, cands] : m) total += cands.size();
    return total;
}

void add_edge_once(std::set<DominatorPair>& edges, NodeId a, NodeId b) {
    edges.insert({std::min(a, b), std::max(a, b)});
}

protocol::ConnectorState parallel_connectors(ThreadPool& pool, const GeometricGraph& udg,
                                             const protocol::ClusterState& cluster,
                                             std::size_t* items) {
    const auto n = static_cast<NodeId>(udg.node_count());
    std::vector<bool> connector(n, false);
    std::set<DominatorPair> edges;
    *items = 0;

    // Phase A: dominators two hops apart; candidates are dominatees
    // adjacent to both.
    CandidateMap two_hop;
    for (NodeId w = 0; w < n; ++w) {
        const auto doms = cluster.dominators(w);
        for (std::size_t i = 0; i < doms.size(); ++i) {
            for (std::size_t j = i + 1; j < doms.size(); ++j) {
                two_hop[{doms[i], doms[j]}].push_back(w);
            }
        }
    }
    *items += candidate_count(two_hop);
    {
        const auto winners = elect_winners(pool, udg, two_hop);
        std::size_t i = 0;
        for (const auto& [pair, cands] : two_hop) {
            for (const NodeId w : winners[i]) {
                connector[w] = true;
                add_edge_once(edges, pair.first, w);
                add_edge_once(edges, w, pair.second);
            }
            ++i;
        }
    }

    // Phase B: first leg of three-hop connections (ordered pairs u → v).
    CandidateMap first_leg;
    for (NodeId w = 0; w < n; ++w) {
        for (const NodeId u : cluster.dominators(w)) {
            for (const NodeId v : cluster.two_hop_dominators(w)) {
                first_leg[{u, v}].push_back(w);
            }
        }
    }
    *items += candidate_count(first_leg);
    CandidateMap first_winners;
    {
        const auto winners = elect_winners(pool, udg, first_leg);
        std::size_t i = 0;
        for (const auto& [pair, cands] : first_leg) {
            for (const NodeId w : winners[i]) {
                first_winners[pair].push_back(w);
                connector[w] = true;
                add_edge_once(edges, pair.first, w);
            }
            ++i;
        }
    }

    // Phase C: second leg — dominatees of v audible from a first-leg
    // winner.
    CandidateMap second_leg;
    std::map<std::pair<DominatorPair, NodeId>, std::vector<NodeId>> audible_winners;
    for (const auto& [pair, winners] : first_winners) {
        std::set<NodeId> cands;
        for (const NodeId w : winners) {
            for (const NodeId x : udg.neighbors(w)) {
                const auto doms = cluster.dominators(x);
                if (std::binary_search(doms.begin(), doms.end(), pair.second)) {
                    cands.insert(x);
                    audible_winners[{pair, x}].push_back(w);
                }
            }
        }
        second_leg[pair].assign(cands.begin(), cands.end());
    }
    *items += candidate_count(second_leg);
    {
        const auto winners = elect_winners(pool, udg, second_leg);
        std::size_t i = 0;
        for (const auto& [pair, cands] : second_leg) {
            for (const NodeId x : winners[i]) {
                connector[x] = true;
                add_edge_once(edges, x, pair.second);
                for (const NodeId w : audible_winners[{pair, x}]) {
                    add_edge_once(edges, x, w);
                }
            }
            ++i;
        }
    }

    protocol::ConnectorState state;
    state.is_connector = std::move(connector);
    state.cds_edges.assign(edges.begin(), edges.end());
    return state;
}

// ---- ICDS stage ------------------------------------------------------

GeometricGraph parallel_induce(ThreadPool& pool, const GeometricGraph& udg,
                               const std::vector<bool>& in_backbone) {
    const auto n = static_cast<NodeId>(udg.node_count());
    std::vector<std::vector<NodeId>> kept(n);
    pool.parallel_for(0, n, [&](std::size_t v) {
        if (!in_backbone[v]) return;
        for (const NodeId u : udg.neighbors(static_cast<NodeId>(v))) {
            if (u > v && in_backbone[u]) kept[v].push_back(u);
        }
    });
    GeometricGraph g(udg.points());
    for (NodeId v = 0; v < n; ++v) {
        for (const NodeId u : kept[v]) g.add_edge(v, u);
    }
    return g;
}

// ---- LDel stage ------------------------------------------------------

/// LDel⁽¹⁾ triangles via the per-node kernel, node loops in parallel.
/// Same filter as proximity::ldel1_triangles: a triangle survives iff it
/// appears in the local Delaunay triangulation of all three vertices.
std::vector<TriangleKey> parallel_ldel1_triangles(ThreadPool& pool,
                                                  const GeometricGraph& icds) {
    const auto n = static_cast<NodeId>(icds.node_count());
    std::vector<std::vector<TriangleKey>> local(n);
    pool.parallel_for(0, n, [&](std::size_t u) {
        local[u] = proximity::local_triangles_at(icds, static_cast<NodeId>(u));
    });

    std::vector<std::vector<TriangleKey>> mine(n);
    pool.parallel_for(0, n, [&](std::size_t u) {
        for (const auto& t : local[u]) {
            if (t.a != u) continue;  // Count each triangle once, at its least vertex.
            if (std::binary_search(local[t.b].begin(), local[t.b].end(), t) &&
                std::binary_search(local[t.c].begin(), local[t.c].end(), t)) {
                mine[u].push_back(t);
            }
        }
    });

    // Concatenating in node order yields the globally sorted set (the
    // least vertex is the leading key component).
    std::vector<TriangleKey> result;
    for (NodeId u = 0; u < n; ++u) {
        result.insert(result.end(), mine[u].begin(), mine[u].end());
    }
    return result;
}

std::vector<TriangleKey> parallel_planarize(ThreadPool& pool, const GeometricGraph& icds,
                                            std::vector<TriangleKey> triangles) {
    const proximity::Alg3Filter filter(icds, std::move(triangles));
    std::vector<char> keep(filter.size(), 0);
    pool.parallel_for(0, filter.size(),
                      [&](std::size_t i) { keep[i] = filter.keeps(i) ? 1 : 0; });
    std::vector<TriangleKey> kept;
    for (std::size_t i = 0; i < filter.size(); ++i) {
        if (keep[i]) kept.push_back(filter.triangles()[i]);
    }
    return kept;
}

}  // namespace

GeometricGraph build_udg_staged(ThreadPool& pool, std::vector<geom::Point> points,
                                double radius, core::PipelineStats* stats) {
    const auto start = Clock::now();
    GeometricGraph g(std::move(points));
    const auto n = static_cast<NodeId>(g.node_count());
    if (n == 0 || radius <= 0.0) {
        push_stage(stats, "udg", start, n, stage_threads(pool));
        return g;
    }

    const proximity::CellGrid grid = proximity::build_cell_grid(g.points(), radius);
    std::vector<std::vector<NodeId>> above(n);
    pool.parallel_for(0, n, [&](std::size_t v) {
        proximity::collect_udg_neighbors_above(g.points(), grid, radius,
                                               static_cast<NodeId>(v), above[v]);
    });
    for (NodeId v = 0; v < n; ++v) {
        for (const NodeId u : above[v]) g.add_edge(v, u);
    }
    push_stage(stats, "udg", start, n, stage_threads(pool));
    return g;
}

core::Backbone build_backbone_staged(ThreadPool& pool, const GeometricGraph& udg,
                                     const EngineOptions& options,
                                     core::PipelineStats* stats,
                                     verify::AuditTrail* trail) {
    const auto start = Clock::now();
    protocol::ClusterState cluster =
        protocol::cluster_reference(udg, options.cluster_policy);
    push_stage(stats, "clustering", start, udg.node_count(), 1);
    if (options.audit && trail != nullptr) {
        trail->stages.push_back(
            verify::audit_clustering(udg, cluster, options.audit_options));
    }
    return build_backbone_from_cluster(pool, udg, std::move(cluster), options, stats,
                                       trail);
}

core::Backbone build_backbone_from_cluster(ThreadPool& pool, const GeometricGraph& udg,
                                           protocol::ClusterState cluster,
                                           const EngineOptions& options,
                                           core::PipelineStats* stats,
                                           verify::AuditTrail* trail) {
    const auto n = static_cast<NodeId>(udg.node_count());
    const std::size_t lanes = stage_threads(pool);
    const bool audit = options.audit && trail != nullptr;
    core::Backbone result;
    result.cluster = std::move(cluster);

    auto start = Clock::now();
    std::size_t candidate_items = 0;
    protocol::ConnectorState connectors =
        parallel_connectors(pool, udg, result.cluster, &candidate_items);
    push_stage(stats, "connectors", start, candidate_items, lanes);
    if (audit) {
        trail->stages.push_back(verify::audit_connectors(
            udg, result.cluster, connectors.cds_edges, options.audit_options));
    }

    start = Clock::now();
    result.in_backbone.assign(n, false);
    for (NodeId v = 0; v < n; ++v) {
        result.in_backbone[v] =
            result.cluster.is_dominator(v) || connectors.is_connector[v];
    }
    result.icds = parallel_induce(pool, udg, result.in_backbone);
    push_stage(stats, "icds", start, n, lanes);
    if (audit) {
        trail->stages.push_back(verify::audit_icds(udg, result.in_backbone,
                                                   result.icds, options.audit_options));
    }

    if (options.planarizer == core::Planarizer::kLdel1) {
        start = Clock::now();
        std::vector<TriangleKey> triangles = parallel_ldel1_triangles(pool, result.icds);
        push_stage(stats, "ldel", start, result.backbone_size(), lanes);

        start = Clock::now();
        const std::size_t triangle_count = triangles.size();
        result.ldel_triangles =
            parallel_planarize(pool, result.icds, std::move(triangles));
        push_stage(stats, "planarize", start, triangle_count, lanes);
    } else {
        start = Clock::now();
        result.ldel_triangles = proximity::ldel_k_triangles(result.icds, 2);
        push_stage(stats, "ldel", start, result.backbone_size(), 1);
    }

    start = Clock::now();
    result.ldel_icds = proximity::build_gabriel(result.icds);
    for (const auto& t : result.ldel_triangles) {
        result.ldel_icds.add_edge(t.a, t.b);
        result.ldel_icds.add_edge(t.b, t.c);
        result.ldel_icds.add_edge(t.a, t.c);
    }

    result.is_connector = connectors.is_connector;
    result.cds = GeometricGraph(udg.points());
    for (const auto& [u, v] : connectors.cds_edges) result.cds.add_edge(u, v);

    result.cds_prime = core::with_dominatee_links(result.cds, result.cluster);
    result.icds_prime = core::with_dominatee_links(result.icds, result.cluster);
    result.ldel_icds_prime =
        core::with_dominatee_links(result.ldel_icds, result.cluster);
    push_stage(stats, "assemble", start, n, 1);
    if (audit) {
        // The LDel audit certifies the planarized graphs, so it runs
        // once they are assembled.
        trail->stages.push_back(verify::audit_ldel(udg, result, options.audit_options));
    }
    return result;
}

SpannerEngine::SpannerEngine(EngineOptions options)
    : options_(options), pool_(options.threads) {}

BuildResult SpannerEngine::build(std::vector<geom::Point> points, double radius) {
    BuildResult result;
    result.udg = build_udg_staged(pool_, std::move(points), radius, &result.stats);
    result.backbone = build_backbone_staged(pool_, result.udg, options_, &result.stats,
                                            &result.audit);
    return result;
}

core::Backbone SpannerEngine::build_backbone(const GeometricGraph& udg,
                                             core::PipelineStats* stats,
                                             verify::AuditTrail* trail) {
    return build_backbone_staged(pool_, udg, options_, stats, trail);
}

}  // namespace geospanner::engine
