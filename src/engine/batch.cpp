#include "engine/batch.h"

#include <utility>

namespace geospanner::engine {

std::vector<BatchResult> build_batch(ThreadPool& pool,
                                     const std::vector<core::WorkloadConfig>& configs,
                                     const EngineOptions& options) {
    std::vector<BatchResult> results(configs.size());
    pool.parallel_for(0, configs.size(), [&](std::size_t i) {
        BatchResult& out = results[i];
        auto udg = core::random_connected_udg(configs[i]);
        if (!udg) return;  // Budget exhausted; out.udg stays nullopt.
        // Stages run inline on this lane (nested parallel_for), so the
        // batch scales across instances, not within them.
        out.backbone = build_backbone_staged(pool, *udg, options, &out.stats);
        out.udg = std::move(udg);
    });
    return results;
}

std::vector<BatchResult> build_batch(SpannerEngine& engine,
                                     const std::vector<core::WorkloadConfig>& configs) {
    return build_batch(engine.pool(), configs, engine.options());
}

}  // namespace geospanner::engine
