#include "shard/partition.h"

#include <algorithm>
#include <cmath>

namespace geospanner::shard {

using graph::NodeId;

namespace {

/// Tile index along one axis: half-open strips [lo + i·w, lo + (i+1)·w),
/// clamped so the closed top border (and any floating-point spill)
/// lands in the last strip.
std::size_t strip_of(double x, double lo, double strip_width, std::size_t strips) {
    if (strips <= 1 || strip_width <= 0.0) return 0;
    const double offset = std::floor((x - lo) / strip_width);
    if (offset <= 0.0) return 0;
    const auto i = static_cast<std::size_t>(offset);
    return std::min(i, strips - 1);
}

}  // namespace

std::vector<std::vector<NodeId>> PartitionPlan::regions() const {
    std::vector<std::vector<NodeId>> out;
    out.reserve(tiles.size());
    for (const Tile& tile : tiles) out.push_back(tile.region);
    return out;
}

PartitionPlan partition_points(const std::vector<geom::Point>& points, double radius,
                               std::size_t tile_target, std::size_t halo_hops,
                               const proximity::CompactCellGrid& grid) {
    PartitionPlan plan;
    plan.halo_width = static_cast<double>(std::max<std::size_t>(halo_hops, 1)) *
                      std::max(radius, 0.0);
    if (points.empty()) {
        plan.tiles.resize(1);
        return plan;
    }

    double min_x = points[0].x, max_x = points[0].x;
    double min_y = points[0].y, max_y = points[0].y;
    for (const geom::Point& p : points) {
        min_x = std::min(min_x, p.x);
        max_x = std::max(max_x, p.x);
        min_y = std::min(min_y, p.y);
        max_y = std::max(max_y, p.y);
    }
    const double width = max_x - min_x;
    const double height = max_y - min_y;

    // Near-square tiles: split the target count by the bbox aspect
    // ratio. Degenerate extents (a collinear row, one point, exact
    // duplicates everywhere) collapse that axis to a single strip.
    const std::size_t target = std::max<std::size_t>(tile_target, 1);
    const double aspect = (height > 0.0 && width > 0.0) ? width / height : 0.0;
    if (width <= 0.0) {
        plan.tiles_x = 1;
        plan.tiles_y = height > 0.0 ? target : 1;
    } else if (height <= 0.0) {
        plan.tiles_x = target;
        plan.tiles_y = 1;
    } else {
        plan.tiles_x = std::max<std::size_t>(
            1, static_cast<std::size_t>(
                   std::llround(std::sqrt(static_cast<double>(target) * aspect))));
        plan.tiles_y = std::max<std::size_t>(1, (target + plan.tiles_x - 1) / plan.tiles_x);
    }

    const double tile_w = plan.tiles_x > 0 ? width / static_cast<double>(plan.tiles_x) : 0.0;
    const double tile_h = plan.tiles_y > 0 ? height / static_cast<double>(plan.tiles_y) : 0.0;

    plan.tiles.resize(plan.tiles_x * plan.tiles_y);
    for (std::size_t ty = 0; ty < plan.tiles_y; ++ty) {
        for (std::size_t tx = 0; tx < plan.tiles_x; ++tx) {
            TileRect& rect = plan.tiles[ty * plan.tiles_x + tx].rect;
            rect.min_x = min_x + static_cast<double>(tx) * tile_w;
            rect.max_x = tx + 1 == plan.tiles_x ? max_x : rect.min_x + tile_w;
            rect.min_y = min_y + static_cast<double>(ty) * tile_h;
            rect.max_y = ty + 1 == plan.tiles_y ? max_y : rect.min_y + tile_h;
        }
    }

    plan.tile_of.resize(points.size());
    for (NodeId v = 0; v < points.size(); ++v) {
        const std::size_t tx = strip_of(points[v].x, min_x, tile_w, plan.tiles_x);
        const std::size_t ty = strip_of(points[v].y, min_y, tile_h, plan.tiles_y);
        const std::size_t t = ty * plan.tiles_x + tx;
        plan.tile_of[v] = static_cast<std::uint32_t>(t);
        plan.tiles[t].owned.push_back(v);  // v ascends, so lists stay sorted
    }

    for (Tile& tile : plan.tiles) {
        if (tile.owned.empty()) continue;  // nothing to build, region unused
        tile.region = grid.nodes_in_rect(
            tile.rect.min_x - plan.halo_width, tile.rect.min_y - plan.halo_width,
            tile.rect.max_x + plan.halo_width, tile.rect.max_y + plan.halo_width);
    }
    return plan;
}

}  // namespace geospanner::shard
