// Tile partition of a point set for sharded construction.
//
// The plane's bounding box is cut into an axis-aligned tiles_x × tiles_y
// grid. Every node is *owned* by exactly one tile (half-open ownership
// rectangles, the top/right border rows closed — a point exactly on an
// interior tile line belongs to the tile above/right of it, so ownership
// is a total function even on degenerate inputs). Each tile's *region*
// is its owned rectangle grown by halo_width = halo_hops · radius on
// every side, materialized at cell granularity through the shared
// spatial grid (CompactCellGrid::nodes_in_rect) — a superset of the exact
// halo, which is always safe: owned decisions read at most halo_hops
// UDG hops ≤ halo_width of context, and extra context beyond that
// cannot change them (see docs/ARCHITECTURE.md, shard layer).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geom/vec2.h"
#include "graph/geometric_graph.h"
#include "proximity/cell_grid.h"

namespace geospanner::shard {

/// Closed rectangle; owned rectangles of adjacent tiles share borders
/// but ownership is decided by index arithmetic, not rect membership.
struct TileRect {
    double min_x = 0.0, min_y = 0.0, max_x = 0.0, max_y = 0.0;
};

struct Tile {
    TileRect rect;                          ///< owned rectangle
    std::vector<graph::NodeId> owned;       ///< ascending
    std::vector<graph::NodeId> region;      ///< ascending superset: owned + halo
};

struct PartitionPlan {
    std::size_t tiles_x = 1;
    std::size_t tiles_y = 1;
    double halo_width = 0.0;                ///< Euclidean halo margin per side
    std::vector<Tile> tiles;                ///< row-major, tiles_x * tiles_y
    std::vector<std::uint32_t> tile_of;     ///< node id → owning tile index

    [[nodiscard]] std::size_t tile_count() const noexcept { return tiles.size(); }
    /// Per-tile region node lists, the shape verify::audit_shards takes.
    [[nodiscard]] std::vector<std::vector<graph::NodeId>> regions() const;
};

/// Partitions `points` into roughly `tile_target` tiles (at least one;
/// the grid is chosen near-square in tile aspect) with a halo of
/// halo_hops · radius. Precondition: radius > 0 and `grid` is the cell
/// grid of `points` at cell side `radius` (the same one the UDG stage
/// scans), so the halo query and the neighbor scans agree on bucketing.
[[nodiscard]] PartitionPlan partition_points(const std::vector<geom::Point>& points,
                                             double radius, std::size_t tile_target,
                                             std::size_t halo_hops,
                                             const proximity::CompactCellGrid& grid);

}  // namespace geospanner::shard
