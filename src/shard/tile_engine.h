// Tile-sharded spanner construction for million-node worlds.
//
// The monolithic engine (src/engine) parallelizes the per-node work
// *inside* each stage but still walks every stage over the full graph on
// one thread's orchestration. TileShardedEngine instead carves the plane
// into an axis-aligned tile grid (shard::partition_points), runs the
// whole staged pipeline per tile over the tile's halo-extended region,
// and deterministically merges the per-tile outputs.
//
// Equivalence contract: the merged UDG, cluster state, connector flags,
// all six backbone graphs, and the LDel triangle set are edge-for-edge
// identical to a monolithic SpannerEngine build of the same input, for
// any tile count and thread count (tests/test_shard.cpp pins this
// across shapes × seeds × tiles × threads, audits on).
//
// Why it works — the per-stage locality ledger (full argument in
// docs/ARCHITECTURE.md):
//   * the MIS election is the one stage with unbounded decision chains
//     (a collinear run of ascending ids propagates roles arbitrarily
//     far), so roles are elected ONCE on the merged UDG — cheap,
//     O(rounds · m) — and the global ClusterState is restricted to each
//     region (restriction only drops out-of-region list entries, never
//     invents any);
//   * every downstream decision of an owned node then reads a bounded
//     hop ball: connector elections ≲ 4 hops, ICDS rows 5, LDel¹
//     triangle membership 6, Algorithm-3 partner certification ≲ 9,
//     Gabriel witnesses 1 — all under the default halo of
//     halo_hops = 10 hops (one hop spans ≤ radius, so a Euclidean halo
//     of halo_hops · radius dominates the hop ball; regions are
//     cell-granular supersets, and extra context never changes an owned
//     decision).
// verify::audit_shards certifies the halo/ownership/coverage invariants
// on every audited build.
//
// Ownership rule (the merge's determinism anchor): an edge is owned by
// the tile owning its lexicographically smaller endpoint; a triangle by
// the tile owning its least vertex; a node flag by the node's tile.
// Region node lists are sorted by global id, so local ids are
// order-isomorphic to global ids and every id-based election inside a
// tile decides exactly as the monolithic run does.
#pragma once

#include <cstddef>
#include <vector>

#include "core/backbone.h"
#include "core/report.h"
#include "engine/engine.h"
#include "engine/thread_pool.h"
#include "graph/geometric_graph.h"
#include "shard/partition.h"
#include "verify/audit.h"

namespace geospanner::shard {

struct ShardOptions {
    std::size_t threads = 0;  ///< 0 → hardware concurrency
    /// Target tile count; 0 → 4 × thread count (enough tiles that the
    /// slowest tile cannot straggle the whole build).
    std::size_t tiles = 0;
    /// Halo width in units of the transmission radius. 10 covers the
    /// deepest decision chain of the pipeline (see header comment); it
    /// is a tunable, not a guess — verify::audit_shards plus the
    /// equivalence suite will catch a halo set too thin.
    std::size_t halo_hops = 10;
    protocol::ClusterPolicy cluster_policy = protocol::ClusterPolicy::kLowestId;
    core::Planarizer planarizer = core::Planarizer::kLdel1;
    /// Opt-in verification: runs the monolithic per-stage audits on the
    /// MERGED structures plus verify::audit_shards on the tile layout.
    bool audit = false;
    verify::AuditOptions audit_options;
};

/// Timing breakdown of one tile's pipeline run.
struct ShardStats {
    std::size_t tile = 0;            ///< tile index (row-major)
    std::size_t owned = 0;           ///< nodes this tile owns
    std::size_t region = 0;          ///< nodes in the halo-extended region
    core::PipelineStats stats;       ///< per-stage times of the tile's pipeline
};

struct ShardBuildResult {
    graph::GeometricGraph udg;       ///< merged, identical to monolithic
    core::Backbone backbone;         ///< merged, identical to monolithic
    core::PipelineStats stats;       ///< partition / udg / clustering / shards / merge
    std::vector<ShardStats> shards;  ///< one entry per tile that built anything
    verify::AuditTrail audit;        ///< empty unless ShardOptions::audit
};

/// Facade owning the pool: one engine, many sharded builds.
class TileShardedEngine {
  public:
    explicit TileShardedEngine(ShardOptions options = {});

    [[nodiscard]] std::size_t thread_count() const noexcept {
        return pool_.thread_count();
    }
    [[nodiscard]] const ShardOptions& options() const noexcept { return options_; }

    /// Full sharded pipeline from raw node positions. Degenerate inputs
    /// (no points, radius ≤ 0) take the monolithic path — there is
    /// nothing to shard and the stage names reflect that.
    [[nodiscard]] ShardBuildResult build(std::vector<geom::Point> points, double radius);

  private:
    ShardOptions options_;
    engine::ThreadPool pool_;
};

}  // namespace geospanner::shard
