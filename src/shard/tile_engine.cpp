#include "shard/tile_engine.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "protocol/clustering.h"
#include "proximity/cell_grid.h"

namespace geospanner::shard {

using graph::GeometricGraph;
using graph::NodeId;
using proximity::TriangleKey;

namespace {

using Clock = std::chrono::steady_clock;
using EdgeList = std::vector<std::pair<NodeId, NodeId>>;

double ms_since(Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

void push_stage(core::PipelineStats& stats, const char* name, Clock::time_point start,
                std::size_t items, std::size_t threads) {
    stats.stages.push_back({name, ms_since(start), items, threads});
}

/// Local index of global id g in a sorted region list (must be present).
NodeId local_of(const std::vector<NodeId>& region, NodeId g) {
    return static_cast<NodeId>(
        std::lower_bound(region.begin(), region.end(), g) - region.begin());
}

bool in_list(const std::vector<NodeId>& sorted, NodeId g) {
    return std::binary_search(sorted.begin(), sorted.end(), g);
}

/// The owned slice a tile contributes to the merge: global-id edge lists
/// per backbone graph (each sorted — extraction preserves the local
/// lexicographic order because local ids are order-isomorphic to global
/// ids), owned triangles, and owned connector flags.
struct TileOutput {
    EdgeList cds, cds_prime, icds, icds_prime, ldel, ldel_prime;
    std::vector<TriangleKey> triangles;
    std::vector<NodeId> connectors;  ///< owned nodes whose flag is set
    ShardStats stats;
    bool built = false;
};

/// Edges of the local graph whose global smaller endpoint this tile
/// owns, translated to global ids. Stays sorted: edges() is local-
/// lexicographic and region[] is strictly increasing.
EdgeList owned_edges(const GeometricGraph& local, const std::vector<NodeId>& region,
                     const std::vector<std::uint32_t>& tile_of, std::uint32_t tile) {
    EdgeList out;
    for (const auto& [a, b] : local.edges()) {
        const NodeId ga = region[a];
        if (tile_of[ga] != tile) continue;
        out.emplace_back(ga, region[b]);
    }
    return out;
}

/// Restricts the globally elected cluster state to a region: roles are
/// copied, dominator / two-hop lists keep only in-region entries
/// (remapped to local ids). Restriction never invents entries, so every
/// owned node — whose full lists lie inside the halo — sees exactly the
/// lists the monolithic run used.
protocol::ClusterState restrict_cluster(const protocol::ClusterState& global,
                                        const std::vector<NodeId>& region) {
    protocol::ClusterState local;
    const std::size_t m = region.size();
    local.role.resize(m);
    local.dominators_of.resize(m);
    local.two_hop_dominators_of.resize(m);
    for (std::size_t i = 0; i < m; ++i) {
        const NodeId g = region[i];
        local.role[i] = global.role[g];
        for (const NodeId d : global.dominators_of[g]) {
            if (in_list(region, d)) local.dominators_of[i].push_back(local_of(region, d));
        }
        for (const NodeId d : global.two_hop_dominators_of[g]) {
            if (in_list(region, d)) {
                local.two_hop_dominators_of[i].push_back(local_of(region, d));
            }
        }
    }
    return local;
}

/// Concatenates per-tile owned slices (disjoint by the ownership rule)
/// and canonicalizes into a graph via the bulk constructor.
GeometricGraph merge_graph(const std::vector<geom::Point>& points,
                           const std::vector<TileOutput>& outputs,
                           EdgeList TileOutput::* member) {
    std::size_t total = 0;
    for (const TileOutput& out : outputs) total += (out.*member).size();
    EdgeList edges;
    edges.reserve(total);
    for (const TileOutput& out : outputs) {
        edges.insert(edges.end(), (out.*member).begin(), (out.*member).end());
    }
    std::sort(edges.begin(), edges.end());
    return GeometricGraph::from_edges(points, edges);
}

}  // namespace

TileShardedEngine::TileShardedEngine(ShardOptions options)
    : options_(options), pool_(options.threads) {}

ShardBuildResult TileShardedEngine::build(std::vector<geom::Point> points,
                                          double radius) {
    ShardBuildResult result;
    engine::EngineOptions eopts;
    eopts.cluster_policy = options_.cluster_policy;
    eopts.planarizer = options_.planarizer;

    if (points.empty() || radius <= 0.0) {
        // Nothing to shard: no geometry to partition (and the monolithic
        // path is exact on these inputs by definition).
        eopts.audit = options_.audit;
        eopts.audit_options = options_.audit_options;
        result.udg = engine::build_udg_staged(pool_, std::move(points), radius,
                                              &result.stats);
        result.backbone = engine::build_backbone_staged(pool_, result.udg, eopts,
                                                        &result.stats, &result.audit);
        return result;
    }

    // Partition: one shared cell grid serves the halo queries here and
    // every per-node UDG scan below, so region extraction and neighbor
    // enumeration agree on bucketing.
    auto start = Clock::now();
    const std::size_t n = points.size();
    const std::size_t tile_target =
        options_.tiles > 0 ? options_.tiles : 4 * pool_.thread_count();
    const proximity::CompactCellGrid grid(points, radius);
    const PartitionPlan plan =
        partition_points(points, radius, tile_target, options_.halo_hops, grid);
    push_stage(result.stats, "partition", start, n, 1);

    // UDG: each tile scans its owned nodes against the shared grid; the
    // per-node kernel is the monolithic engine's, so the merged edge set
    // is identical by construction.
    start = Clock::now();
    const double r2 = radius * radius;
    std::vector<std::vector<NodeId>> above(n);
    pool_.parallel_for(0, plan.tile_count(), [&](std::size_t t) {
        for (const NodeId v : plan.tiles[t].owned) {
            grid.for_neighbors_above(points[v], v, r2,
                                     [&](NodeId u) { above[v].push_back(u); });
            std::sort(above[v].begin(), above[v].end());
        }
    });
    {
        std::size_t total = 0;
        for (const auto& list : above) total += list.size();
        EdgeList edges;
        edges.reserve(total);
        for (NodeId v = 0; v < n; ++v) {
            for (const NodeId u : above[v]) edges.emplace_back(v, u);
        }
        result.udg = GeometricGraph::from_edges(std::move(points), edges);
    }
    above.clear();
    above.shrink_to_fit();
    push_stage(result.stats, "udg", start, n, pool_.thread_count());

    // Clustering runs globally: the lowest-id MIS has unbounded decision
    // chains (see header), and one global election is cheap next to the
    // geometric stages it unlocks for sharding.
    start = Clock::now();
    protocol::ClusterState cluster =
        protocol::cluster_reference(result.udg, options_.cluster_policy);
    push_stage(result.stats, "clustering", start, n, 1);
    if (options_.audit) {
        result.audit.stages.push_back(
            verify::audit_clustering(result.udg, cluster, options_.audit_options));
    }

    // Per-tile pipelines: each tile builds its region subgraph, restricts
    // the global cluster state to it, and runs the staged pipeline from
    // the connector stage on (engine::build_backbone_from_cluster — the
    // exact monolithic code path, executed inline on the worker lane).
    start = Clock::now();
    std::vector<TileOutput> outputs(plan.tile_count());
    pool_.parallel_for(0, plan.tile_count(), [&](std::size_t t) {
        const Tile& tile = plan.tiles[t];
        if (tile.owned.empty()) return;
        TileOutput& out = outputs[t];
        const std::vector<NodeId>& region = tile.region;

        std::vector<geom::Point> local_points;
        local_points.reserve(region.size());
        for (const NodeId g : region) local_points.push_back(result.udg.point(g));
        EdgeList local_edges;
        for (NodeId a = 0; a < region.size(); ++a) {
            const NodeId ga = region[a];
            for (const NodeId gb : result.udg.neighbors(ga)) {
                if (gb <= ga || !in_list(region, gb)) continue;
                local_edges.emplace_back(a, local_of(region, gb));
            }
        }
        const GeometricGraph local_udg =
            GeometricGraph::from_edges(std::move(local_points), local_edges);

        engine::EngineOptions tile_opts;
        tile_opts.cluster_policy = options_.cluster_policy;
        tile_opts.planarizer = options_.planarizer;
        const core::Backbone local = engine::build_backbone_from_cluster(
            pool_, local_udg, restrict_cluster(cluster, region), tile_opts,
            &out.stats.stats, nullptr);

        const auto tile_id = static_cast<std::uint32_t>(t);
        out.cds = owned_edges(local.cds, region, plan.tile_of, tile_id);
        out.cds_prime = owned_edges(local.cds_prime, region, plan.tile_of, tile_id);
        out.icds = owned_edges(local.icds, region, plan.tile_of, tile_id);
        out.icds_prime = owned_edges(local.icds_prime, region, plan.tile_of, tile_id);
        out.ldel = owned_edges(local.ldel_icds, region, plan.tile_of, tile_id);
        out.ldel_prime = owned_edges(local.ldel_icds_prime, region, plan.tile_of, tile_id);
        for (const TriangleKey& tri : local.ldel_triangles) {
            if (plan.tile_of[region[tri.a]] != tile_id) continue;
            out.triangles.push_back({region[tri.a], region[tri.b], region[tri.c]});
        }
        for (const NodeId v : tile.owned) {
            if (local.is_connector[local_of(region, v)]) out.connectors.push_back(v);
        }
        out.stats.tile = t;
        out.stats.owned = tile.owned.size();
        out.stats.region = region.size();
        out.built = true;
    });
    {
        std::size_t built = 0;
        for (const TileOutput& out : outputs) built += out.built ? 1 : 0;
        push_stage(result.stats, "shards", start, built, pool_.thread_count());
    }

    // Merge: per-tile slices are disjoint (every edge/triangle/flag has
    // exactly one owner), so concatenate + sort canonicalizes; the
    // result is assembled through the O(m) bulk graph constructor.
    start = Clock::now();
    core::Backbone& backbone = result.backbone;
    backbone.is_connector.assign(n, false);
    for (const TileOutput& out : outputs) {
        for (const NodeId v : out.connectors) backbone.is_connector[v] = true;
    }
    backbone.in_backbone.resize(n);
    for (NodeId v = 0; v < n; ++v) {
        backbone.in_backbone[v] = cluster.is_dominator(v) || backbone.is_connector[v];
    }
    const std::vector<geom::Point>& merged_points = result.udg.points();
    backbone.cds = merge_graph(merged_points, outputs, &TileOutput::cds);
    backbone.cds_prime = merge_graph(merged_points, outputs, &TileOutput::cds_prime);
    backbone.icds = merge_graph(merged_points, outputs, &TileOutput::icds);
    backbone.icds_prime = merge_graph(merged_points, outputs, &TileOutput::icds_prime);
    backbone.ldel_icds = merge_graph(merged_points, outputs, &TileOutput::ldel);
    backbone.ldel_icds_prime =
        merge_graph(merged_points, outputs, &TileOutput::ldel_prime);
    for (const TileOutput& out : outputs) {
        backbone.ldel_triangles.insert(backbone.ldel_triangles.end(),
                                       out.triangles.begin(), out.triangles.end());
    }
    std::sort(backbone.ldel_triangles.begin(), backbone.ldel_triangles.end());
    backbone.cluster = std::move(cluster);
    for (TileOutput& out : outputs) {
        if (out.built) result.shards.push_back(std::move(out.stats));
    }
    push_stage(result.stats, "merge", start, plan.tile_count(), 1);

    if (options_.audit) {
        // The monolithic per-stage audits certify the MERGED structures
        // (a shard bug that survives the merge fails here exactly as it
        // would in the monolithic engine), then audit_shards certifies
        // the layout itself.
        result.audit.stages.push_back(
            verify::audit_connectors(result.udg, backbone.cluster,
                                     backbone.cds.edges(), options_.audit_options));
        result.audit.stages.push_back(verify::audit_icds(result.udg,
                                                         backbone.in_backbone,
                                                         backbone.icds,
                                                         options_.audit_options));
        result.audit.stages.push_back(
            verify::audit_ldel(result.udg, backbone, options_.audit_options));
        verify::ShardLayout layout;
        layout.tile_of = plan.tile_of;
        layout.regions = plan.regions();
        layout.halo_hops = options_.halo_hops;
        result.audit.stages.push_back(
            verify::audit_shards(result.udg, backbone, layout, options_.audit_options));
    }
    return result;
}

}  // namespace geospanner::shard
