// Dominating-set-based routing over the planar backbone (the routing
// scheme the paper's construction is built for): a source sends directly
// when the destination is within range, otherwise hands the packet to a
// dominator, the packet travels the planar LDel(ICDS) backbone under
// greedy-face-greedy geographic routing, and the destination's dominator
// delivers it in one final hop.
#pragma once

#include "core/backbone.h"
#include "routing/router.h"

namespace geospanner::routing {

class BackboneRouter {
  public:
    /// Both references are borrowed and must outlive the router.
    BackboneRouter(const core::Backbone& backbone, const graph::GeometricGraph& udg);

    /// Routes src -> dst. Guaranteed to deliver when the UDG is connected
    /// (the backbone is a connected planar spanner).
    [[nodiscard]] RouteResult route(graph::NodeId src, graph::NodeId dst) const;

    /// Hop-by-hop forwarding state for one packet: which phase of the
    /// hierarchical route it is in, plus the embedded GPSR header for
    /// the backbone leg.
    struct PacketState {
        enum class Phase : unsigned char { kStart, kSpine, kLastHop };
        Phase phase = Phase::kStart;
        graph::NodeId out_gateway = graph::kInvalidNode;
        Router::GpsrPacketState spine{};
    };

    /// One localized forwarding decision (for netsim::run_hop_by_hop):
    /// returns the next hop or kInvalidNode to drop. The backbone leg
    /// uses GPSR's per-packet state machine (hop-local), whereas route()
    /// uses GFG (delivery-guaranteed but with look-ahead face walks) —
    /// on the planar backbone both deliver; paths can differ slightly.
    [[nodiscard]] graph::NodeId step(graph::NodeId current, graph::NodeId dst,
                                     PacketState& state) const;

  private:
    /// The backbone node acting as gateway for v: v itself if v is a
    /// dominator or connector, otherwise its dominator closest to `toward`.
    [[nodiscard]] graph::NodeId gateway(graph::NodeId v, geom::Point toward) const;

    const core::Backbone* backbone_;
    const graph::GeometricGraph* udg_;
    Router backbone_router_;
};

}  // namespace geospanner::routing
