// Geographic routing on geometric graphs.
//
// The paper motivates its planar backbone with localized geographic
// routing: greedy forwarding plus face-routing recovery (GPSR / GFG)
// requires a *planar* substrate to guarantee delivery. This module
// implements:
//  * greedy forwarding (can fail at a local minimum),
//  * FACE-1 face routing (guaranteed delivery on connected plane graphs),
//  * GFG: greedy with face-routing recovery, the practical combination.
//
// All routing is memoryless per hop apart from the standard per-packet
// state (destination position, recovery anchor), matching the protocols'
// localized spirit; the implementation here simulates the packet walk
// centrally and returns the traversed path.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/geometric_graph.h"

namespace geospanner::routing {

struct RouteResult {
    bool delivered = false;
    std::vector<graph::NodeId> path;  ///< nodes visited, starting at the source

    [[nodiscard]] std::size_t hops() const {
        return path.empty() ? 0 : path.size() - 1;
    }
    [[nodiscard]] double length(const graph::GeometricGraph& g) const;
};

/// Routing engine over one graph; precomputes angular adjacency rings.
/// For face routing the graph must be a plane (non-crossing) embedding.
class Router {
  public:
    explicit Router(const graph::GeometricGraph& g);

    /// Greedy geographic forwarding: always move to the neighbor closest
    /// to the destination, strictly closer than the current node.
    /// Fails (delivered=false) at a local minimum.
    [[nodiscard]] RouteResult greedy(graph::NodeId src, graph::NodeId dst,
                                     std::size_t max_steps = 0) const;

    /// FACE-1 face routing along the segment src→dst. Guaranteed to
    /// deliver on a connected plane graph.
    [[nodiscard]] RouteResult face(graph::NodeId src, graph::NodeId dst,
                                   std::size_t max_steps = 0) const;

    /// Greedy-Face-Greedy: greedy until a local minimum, then one face
    /// traversal until progress, then greedy again. Guaranteed delivery
    /// on a connected plane graph.
    [[nodiscard]] RouteResult gfg(graph::NodeId src, graph::NodeId dst,
                                  std::size_t max_steps = 0) const;

    /// Compass routing (Kranakis-Singh-Urrutia): forward to the neighbor
    /// whose direction is angularly closest to the destination's.
    /// Delivers on Delaunay triangulations; can loop on general graphs
    /// (bounded by max_steps, then reported undelivered).
    [[nodiscard]] RouteResult compass(graph::NodeId src, graph::NodeId dst,
                                      std::size_t max_steps = 0) const;

    /// GPSR-style perimeter recovery (Karp & Kung): greedy, and at a
    /// local minimum the right-hand rule with on-the-fly face changes
    /// whenever the candidate edge crosses the line to the destination
    /// closer than the current crossing. Heuristic: no formal delivery
    /// guarantee (use gfg for that), but typically shorter recovery
    /// walks. Implemented on top of gpsr_step, so the path equals what
    /// hop-by-hop forwarding produces.
    [[nodiscard]] RouteResult gpsr(graph::NodeId src, graph::NodeId dst,
                                   std::size_t max_steps = 0) const;

    /// Per-packet GPSR forwarding state — exactly what a real GPSR
    /// packet header carries (mode flag, the position where the packet
    /// entered perimeter mode, the current face-entry crossing, the
    /// previous hop, and the first perimeter edge for loop detection).
    struct GpsrPacketState {
        enum class Mode : unsigned char { kGreedy, kPerimeter };
        Mode mode = Mode::kGreedy;
        geom::Point entry{};       ///< Lp: position at perimeter entry
        geom::Point face_entry{};  ///< Lf: best crossing of (Lp, dst) so far
        graph::NodeId prev = graph::kInvalidNode;
        std::pair<graph::NodeId, graph::NodeId> first_edge{graph::kInvalidNode,
                                                           graph::kInvalidNode};
    };

    /// One hop-local GPSR forwarding decision at `current` toward `dst`,
    /// updating the packet state. Returns the next hop, or kInvalidNode
    /// to drop (perimeter loop closed: destination unreachable). Only
    /// uses information available at `current` plus the packet state —
    /// this is the localized form run by netsim's hop-by-hop mode.
    [[nodiscard]] graph::NodeId gpsr_step(graph::NodeId current, graph::NodeId dst,
                                          GpsrPacketState& state) const;

    /// The face walk starting at directed edge (u, v): successive
    /// directed edges under the next-counter-clockwise-about-the-head
    /// rule, until the walk returns to (u, v). Exposed for testing the
    /// face-partition property.
    [[nodiscard]] std::vector<std::pair<graph::NodeId, graph::NodeId>> walk_face(
        graph::NodeId u, graph::NodeId v) const;

  private:
    /// Neighbor following `from` in counter-clockwise order around v.
    [[nodiscard]] graph::NodeId ccw_successor(graph::NodeId v, graph::NodeId from) const;
    /// First neighbor of v counter-clockwise from absolute angle `theta`.
    [[nodiscard]] graph::NodeId first_ccw_from(graph::NodeId v, double theta) const;

    /// One FACE-1 progress phase: starting at `v`, advance along the
    /// plane graph until reaching a node strictly closer to dst than
    /// `threshold` (GFG recovery) or dst itself. Appends visited nodes
    /// to path. Returns the node reached, or kInvalidNode on failure.
    [[nodiscard]] graph::NodeId face_phase(graph::NodeId v, graph::NodeId dst,
                                           double threshold, std::size_t max_steps,
                                           std::vector<graph::NodeId>& path) const;

    const graph::GeometricGraph* g_;
    std::vector<std::vector<graph::NodeId>> ring_;  ///< neighbors sorted by angle
};

}  // namespace geospanner::routing
