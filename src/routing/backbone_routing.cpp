#include "routing/backbone_routing.h"

#include <cassert>

namespace geospanner::routing {

using graph::NodeId;

BackboneRouter::BackboneRouter(const core::Backbone& backbone,
                               const graph::GeometricGraph& udg)
    : backbone_(&backbone), udg_(&udg), backbone_router_(backbone.ldel_icds) {}

NodeId BackboneRouter::gateway(NodeId v, geom::Point toward) const {
    if (backbone_->in_backbone[v]) return v;
    const auto& dominators = backbone_->cluster.dominators_of[v];
    assert(!dominators.empty() && "a dominatee always has a dominator");
    NodeId best = dominators.front();
    double best_d = geom::squared_distance(udg_->point(best), toward);
    for (const NodeId d : dominators) {
        const double dist = geom::squared_distance(udg_->point(d), toward);
        if (dist < best_d) {
            best = d;
            best_d = dist;
        }
    }
    return best;
}

NodeId BackboneRouter::step(NodeId current, NodeId dst, PacketState& state) const {
    using Phase = PacketState::Phase;
    if (current == dst) return dst;

    if (state.phase == Phase::kStart) {
        // Direct delivery whenever the destination is audible.
        if (udg_->has_edge(current, dst)) return dst;
        state.out_gateway = gateway(dst, udg_->point(current));
        const NodeId in_gateway = gateway(current, udg_->point(dst));
        state.phase = Phase::kSpine;
        if (in_gateway != current) return in_gateway;  // Climb to the backbone.
        // Already a backbone node: fall through to the spine phase.
    }

    if (state.phase == Phase::kSpine) {
        if (current == state.out_gateway) {
            state.phase = Phase::kLastHop;
            return dst;  // The gateway dominates dst (or is dst itself).
        }
        if (udg_->has_edge(current, dst)) return dst;  // Shortcut if audible.
        return backbone_router_.gpsr_step(current, state.out_gateway, state.spine);
    }

    // kLastHop: the previous step handed the packet to dst already; being
    // asked again means something is inconsistent.
    return graph::kInvalidNode;
}

RouteResult BackboneRouter::route(NodeId src, NodeId dst) const {
    RouteResult result;
    result.path.push_back(src);
    if (src == dst) {
        result.delivered = true;
        return result;
    }
    if (udg_->has_edge(src, dst)) {
        result.path.push_back(dst);
        result.delivered = true;
        return result;
    }

    const NodeId in_gw = gateway(src, udg_->point(dst));
    const NodeId out_gw = gateway(dst, udg_->point(src));
    if (in_gw != src) result.path.push_back(in_gw);

    if (in_gw != out_gw) {
        const RouteResult spine = backbone_router_.gfg(in_gw, out_gw);
        if (!spine.delivered) return result;  // Should not happen on a connected UDG.
        result.path.insert(result.path.end(), spine.path.begin() + 1, spine.path.end());
    }
    if (out_gw != dst) result.path.push_back(dst);
    result.delivered = true;
    return result;
}

}  // namespace geospanner::routing
