#include "routing/router.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numbers>
#include <optional>

#include "geom/predicates.h"

namespace geospanner::routing {

using geom::Point;
using graph::GeometricGraph;
using graph::kInvalidNode;
using graph::NodeId;

double RouteResult::length(const GeometricGraph& g) const {
    double total = 0.0;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        total += g.edge_length(path[i], path[i + 1]);
    }
    return total;
}

Router::Router(const GeometricGraph& g) : g_(&g), ring_(g.node_count()) {
    for (NodeId v = 0; v < g.node_count(); ++v) {
        const auto nbrs = g.neighbors(v);
        ring_[v].assign(nbrs.begin(), nbrs.end());
        const Point pv = g.point(v);
        std::sort(ring_[v].begin(), ring_[v].end(), [&](NodeId a, NodeId b) {
            const double aa = geom::angle_of(g.point(a) - pv);
            const double ab = geom::angle_of(g.point(b) - pv);
            if (aa != ab) return aa < ab;
            return a < b;
        });
    }
}

NodeId Router::ccw_successor(NodeId v, NodeId from) const {
    const auto& ring = ring_[v];
    const auto it = std::find(ring.begin(), ring.end(), from);
    assert(it != ring.end());
    const auto next = std::next(it) == ring.end() ? ring.begin() : std::next(it);
    return *next;
}

NodeId Router::first_ccw_from(NodeId v, double theta) const {
    const auto& ring = ring_[v];
    assert(!ring.empty());
    const Point pv = g_->point(v);
    for (const NodeId u : ring) {
        if (geom::angle_of(g_->point(u) - pv) > theta) return u;
    }
    return ring.front();  // Wrap around.
}

std::vector<std::pair<NodeId, NodeId>> Router::walk_face(NodeId u, NodeId v) const {
    std::vector<std::pair<NodeId, NodeId>> walk;
    NodeId a = u;
    NodeId b = v;
    // A directed-edge walk under the ccw-successor rule always returns to
    // its start; the bound guards against misuse on non-graph edges.
    const std::size_t bound = 4 * g_->edge_count() + 4;
    for (std::size_t step = 0; step < bound; ++step) {
        walk.push_back({a, b});
        const NodeId c = ccw_successor(b, a);
        a = b;
        b = c;
        if (a == u && b == v) return walk;
    }
    assert(false && "face walk failed to close");
    return walk;
}

RouteResult Router::greedy(NodeId src, NodeId dst, std::size_t max_steps) const {
    if (max_steps == 0) max_steps = g_->node_count() + 2;
    RouteResult result;
    result.path.push_back(src);
    const Point target = g_->point(dst);
    NodeId v = src;
    for (std::size_t step = 0; step < max_steps; ++step) {
        if (v == dst) {
            result.delivered = true;
            return result;
        }
        const double here = geom::squared_distance(g_->point(v), target);
        NodeId best = kInvalidNode;
        double best_d = here;
        for (const NodeId u : g_->neighbors(v)) {
            const double d = geom::squared_distance(g_->point(u), target);
            if (d < best_d || (d == best_d && best != kInvalidNode && u < best)) {
                best = u;
                best_d = d;
            }
        }
        if (best == kInvalidNode) return result;  // Local minimum.
        v = best;
        result.path.push_back(v);
    }
    return result;
}

namespace {

/// Intersection point of segments (a, b) and (c, d) that are known to
/// properly cross (floating point; used only to order progress).
Point crossing_point(Point a, Point b, Point c, Point d) {
    const double denom = cross(b - a, d - c);
    const double s = cross(c - a, d - c) / denom;
    return {a.x + s * (b.x - a.x), a.y + s * (b.y - a.y)};
}

}  // namespace

NodeId Router::face_phase(NodeId v, NodeId dst, double threshold, std::size_t max_steps,
                          std::vector<NodeId>& path) const {
    const Point target = g_->point(dst);
    const Point anchor = g_->point(v);  // Fixed segment anchor for this phase.

    if (g_->degree(v) == 0) return kInvalidNode;

    // Progress along the anchor->target segment is tracked by the last
    // *event* — an edge crossing or an on-segment node — and candidate
    // events are ordered with the exact comparators, so two events
    // closer together than floating-point precision (a segment passing
    // within one ulp of a vertex) still advance strictly.
    struct Event {
        enum class Kind : unsigned char { kNone, kEdge, kNode } kind = Kind::kNone;
        Point a{}, b{};  // kEdge: the crossed segment's endpoints.
        Point w{};       // kNode: the on-segment node.
    };
    Event last;

    // Is candidate event `e` strictly after `last` along anchor->target?
    const auto after_last = [&](const Event& e) {
        if (last.kind == Event::Kind::kNone) return true;
        if (e.kind == Event::Kind::kEdge) {
            if (last.kind == Event::Kind::kEdge) {
                return geom::compare_crossings_along(anchor, target, e.a, e.b, last.a,
                                                     last.b) > 0;
            }
            return geom::compare_crossing_vs_point_along(anchor, target, e.a, e.b,
                                                         last.w) > 0;
        }
        if (last.kind == Event::Kind::kEdge) {
            return geom::compare_crossing_vs_point_along(anchor, target, last.a, last.b,
                                                         e.w) < 0;
        }
        return geom::compare_points_along(anchor, target, e.w, last.w) > 0;
    };
    // Is candidate `e` strictly after candidate `best` (same comparisons)?
    const auto after = [&](const Event& e, const Event& best) {
        Event saved = last;
        last = best;
        const bool result = after_last(e);
        last = saved;
        return result;
    };

    // Face to traverse first: the one containing the ray v -> target.
    // A walk keeps its face on the *right* of each directed edge, so
    // that face is the one of (v, n) with n the first neighbor counter-
    // clockwise from the ray direction.
    NodeId start_u = v;
    NodeId start_v = first_ccw_from(v, geom::angle_of(target - g_->point(v)));

    std::size_t steps = 0;
    while (steps < max_steps) {
        const auto walk = walk_face(start_u, start_v);
        steps += walk.size();

        // Scan the face boundary for (a) an early exit node — dst or a
        // node within the GFG progress threshold; (b) the furthest-along
        // event strictly after the last one: a boundary node exactly on
        // the anchor segment, or a boundary edge properly crossing it.
        std::optional<std::size_t> exit_at;  // index into walk (head of edge i)
        Event best;
        std::size_t best_at = 0;

        for (std::size_t i = 0; i < walk.size(); ++i) {
            const auto [a, b] = walk[i];
            // Node checks apply to the tail `a` (so index i means we can
            // stop after traversing walk[0..i-1]).
            if (a == dst ||
                std::sqrt(geom::squared_distance(g_->point(a), target)) < threshold) {
                exit_at = i;
                break;
            }
            if (i > 0 && geom::on_segment(anchor, target, g_->point(a)) &&
                g_->point(a) != anchor) {
                Event e;
                e.kind = Event::Kind::kNode;
                e.w = g_->point(a);
                if (after_last(e) && (best.kind == Event::Kind::kNone || after(e, best))) {
                    best = e;
                    best_at = i;
                }
            }
            if (geom::segments_properly_cross(g_->point(a), g_->point(b), anchor,
                                              target)) {
                Event e;
                e.kind = Event::Kind::kEdge;
                e.a = g_->point(a);
                e.b = g_->point(b);
                if (after_last(e) && (best.kind == Event::Kind::kNone || after(e, best))) {
                    best = e;
                    best_at = i;
                }
            }
        }

        if (exit_at) {
            for (std::size_t i = 0; i < *exit_at; ++i) path.push_back(walk[i].second);
            // walk[k] = (a_k, b_k); after traversing k edges we stand at
            // a_{k} == b_{k-1}; the exit node is walk[*exit_at].first.
            return *exit_at == 0 ? walk[0].first : path.back();
        }
        if (best.kind == Event::Kind::kNone) {
            return kInvalidNode;  // No progress possible: unreachable.
        }

        if (best.kind == Event::Kind::kNode) {
            // Jump to the on-segment node and restart from its face
            // toward the target.
            for (std::size_t i = 0; i < best_at; ++i) path.push_back(walk[i].second);
            const NodeId w = walk[best_at].first;
            last = best;
            start_u = w;
            start_v = first_ccw_from(w, geom::angle_of(target - g_->point(w)));
            continue;
        }

        // Traverse the face boundary up to the crossing edge, cross it,
        // and continue in the adjacent face.
        const auto [x, y] = walk[best_at];
        for (std::size_t i = 0; i <= best_at; ++i) path.push_back(walk[i].second);
        last = best;
        start_u = y;
        start_v = x;
    }
    return kInvalidNode;
}

RouteResult Router::face(NodeId src, NodeId dst, std::size_t max_steps) const {
    if (max_steps == 0) {
        max_steps = 1000 + 50 * (g_->node_count() + g_->edge_count());
    }
    RouteResult result;
    result.path.push_back(src);
    if (src == dst) {
        result.delivered = true;
        return result;
    }
    // Pure FACE-1: the only exit is the destination itself (threshold 0
    // can never trigger, distances are non-negative).
    const NodeId reached = face_phase(src, dst, 0.0, max_steps, result.path);
    result.delivered = (reached == dst);
    return result;
}

RouteResult Router::compass(NodeId src, NodeId dst, std::size_t max_steps) const {
    if (max_steps == 0) max_steps = 4 * g_->node_count() + 8;
    RouteResult result;
    result.path.push_back(src);
    const Point target = g_->point(dst);
    NodeId v = src;
    NodeId prev = kInvalidNode;
    for (std::size_t step = 0; step < max_steps; ++step) {
        if (v == dst) {
            result.delivered = true;
            return result;
        }
        if (g_->degree(v) == 0) return result;
        const double theta = geom::angle_of(target - g_->point(v));
        NodeId best = kInvalidNode;
        double best_angle = 0.0;
        double best_d2 = 0.0;
        for (const NodeId u : g_->neighbors(v)) {
            double delta = geom::angle_of(g_->point(u) - g_->point(v)) - theta;
            // Normalize to [0, pi].
            while (delta > std::numbers::pi) delta -= 2.0 * std::numbers::pi;
            while (delta < -std::numbers::pi) delta += 2.0 * std::numbers::pi;
            delta = std::fabs(delta);
            const double d2 = geom::squared_distance(g_->point(u), target);
            if (best == kInvalidNode || delta < best_angle ||
                (delta == best_angle && (d2 < best_d2 || (d2 == best_d2 && u < best)))) {
                best = u;
                best_angle = delta;
                best_d2 = d2;
            }
        }
        // Immediate two-node oscillation means compass is looping.
        if (best == prev && prev != dst) return result;
        prev = v;
        v = best;
        result.path.push_back(v);
    }
    return result;
}

NodeId Router::gpsr_step(NodeId current, NodeId dst, GpsrPacketState& state) const {
    using Mode = GpsrPacketState::Mode;
    const Point target = g_->point(dst);
    const Point here = g_->point(current);

    // Perimeter exit: strictly closer to the destination than the local
    // minimum where the packet entered perimeter mode.
    if (state.mode == Mode::kPerimeter &&
        geom::squared_distance(here, target) <
            geom::squared_distance(state.entry, target)) {
        state.mode = Mode::kGreedy;
    }

    if (state.mode == Mode::kGreedy) {
        const double here_d = geom::squared_distance(here, target);
        NodeId best = kInvalidNode;
        double best_d = here_d;
        for (const NodeId u : g_->neighbors(current)) {
            const double d = geom::squared_distance(g_->point(u), target);
            if (d < best_d || (d == best_d && best != kInvalidNode && u < best)) {
                best = u;
                best_d = d;
            }
        }
        if (best != kInvalidNode) {
            state.prev = current;
            return best;
        }
        if (g_->degree(current) == 0) return kInvalidNode;
        // Local minimum: enter perimeter mode with fresh header state.
        state.mode = Mode::kPerimeter;
        state.entry = here;
        state.face_entry = here;
        state.prev = kInvalidNode;
        state.first_edge = {kInvalidNode, kInvalidNode};
    }

    // Perimeter step: right-hand rule from the arrival edge (or from the
    // destination direction on entry), with face changes whenever the
    // candidate edge crosses (entry, target) closer to the target than
    // the point where the packet entered the current face.
    NodeId n = (state.prev == kInvalidNode)
                   ? first_ccw_from(current, geom::angle_of(target - here))
                   : ccw_successor(current, state.prev);
    for (std::size_t guard = 0; guard < g_->degree(current); ++guard) {
        if (!geom::segments_properly_cross(here, g_->point(n), state.entry, target)) {
            break;
        }
        const Point x = crossing_point(here, g_->point(n), state.entry, target);
        if (geom::squared_distance(x, target) >=
            geom::squared_distance(state.face_entry, target)) {
            break;
        }
        state.face_entry = x;
        n = ccw_successor(current, n);
    }
    if (state.first_edge.first == kInvalidNode) {
        state.first_edge = {current, n};
    } else if (state.first_edge == std::pair{current, n}) {
        return kInvalidNode;  // Perimeter closed without progress: drop.
    }
    state.prev = current;
    return n;
}

RouteResult Router::gpsr(NodeId src, NodeId dst, std::size_t max_steps) const {
    if (max_steps == 0) {
        max_steps = 1000 + 50 * (g_->node_count() + g_->edge_count());
    }
    RouteResult result;
    result.path.push_back(src);
    GpsrPacketState state;
    NodeId v = src;
    for (std::size_t step = 0; step < max_steps; ++step) {
        if (v == dst) {
            result.delivered = true;
            return result;
        }
        const NodeId next = gpsr_step(v, dst, state);
        if (next == kInvalidNode) return result;
        v = next;
        result.path.push_back(v);
    }
    return result;
}

RouteResult Router::gfg(NodeId src, NodeId dst, std::size_t max_steps) const {
    if (max_steps == 0) {
        max_steps = 1000 + 50 * (g_->node_count() + g_->edge_count());
    }
    RouteResult result;
    result.path.push_back(src);
    const Point target = g_->point(dst);
    NodeId v = src;
    std::size_t budget = max_steps;
    while (budget > 0) {
        // Greedy descent.
        while (v != dst && budget > 0) {
            const double here = geom::squared_distance(g_->point(v), target);
            NodeId best = kInvalidNode;
            double best_d = here;
            for (const NodeId u : g_->neighbors(v)) {
                const double d = geom::squared_distance(g_->point(u), target);
                if (d < best_d || (d == best_d && best != kInvalidNode && u < best)) {
                    best = u;
                    best_d = d;
                }
            }
            if (best == kInvalidNode) break;  // Local minimum: recover.
            v = best;
            result.path.push_back(v);
            --budget;
        }
        if (v == dst) {
            result.delivered = true;
            return result;
        }
        // Face-routing recovery until strictly closer than the minimum.
        const double stuck_dist = std::sqrt(geom::squared_distance(g_->point(v), target));
        const std::size_t before = result.path.size();
        const NodeId reached = face_phase(v, dst, stuck_dist, budget, result.path);
        if (reached == kInvalidNode) return result;
        budget -= std::min(budget, result.path.size() - before);
        v = reached;
        if (v == dst) {
            result.delivered = true;
            return result;
        }
    }
    return result;
}

}  // namespace geospanner::routing
