#!/usr/bin/env python3
"""Gate single-thread construction speed against the committed baseline.

Both inputs are JSON-lines files written by bench_engine_scaling (one
object per measurement). The gate compares the best (minimum) wall_ms
among `mode == "single"` rows matching the requested n and thread count
— best-of absorbs scheduler noise on shared CI runners — and fails when
the current run is slower than baseline by more than --max-regress.

Exit codes: 0 pass, 1 regression, 2 malformed/missing input.

Usage:
  tools/check_perf_regression.py bench/baselines/BENCH_engine.json \
      BENCH_engine.json --n 50000 --threads 1 --max-regress 0.15
"""

import argparse
import json
import sys


def die(message: str) -> None:
    print(f"error: {message}", file=sys.stderr)
    sys.exit(2)


def best_wall_ms(path: str, n: int, threads: int) -> float:
    best = None
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError as err:
                    die(f"{path}: bad JSON line: {err}")
                if row.get("mode") != "single":
                    continue
                if row.get("n") != n or row.get("threads") != threads:
                    continue
                wall = row.get("wall_ms")
                if not isinstance(wall, (int, float)) or wall <= 0:
                    die(f"{path}: non-positive wall_ms row: {line}")
                best = wall if best is None else min(best, wall)
    except OSError as err:
        die(f"cannot read {path}: {err}")
    if best is None:
        die(f"{path}: no mode=single row with n={n} threads={threads}")
    return best


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline JSON-lines file")
    parser.add_argument("current", help="freshly measured JSON-lines file")
    parser.add_argument("--n", type=int, default=50_000)
    parser.add_argument("--threads", type=int, default=1)
    parser.add_argument(
        "--max-regress",
        type=float,
        default=0.15,
        help="allowed slowdown fraction (0.15 = fail beyond +15%%)",
    )
    args = parser.parse_args()

    base = best_wall_ms(args.baseline, args.n, args.threads)
    cur = best_wall_ms(args.current, args.n, args.threads)
    ratio = cur / base
    limit = 1.0 + args.max_regress
    print(
        f"n={args.n} threads={args.threads}: baseline {base:.1f} ms, "
        f"current {cur:.1f} ms, ratio {ratio:.3f} (limit {limit:.2f})"
    )
    if ratio > limit:
        print(
            f"FAIL: single-thread construction regressed "
            f"{100.0 * (ratio - 1.0):.1f}% (> {100.0 * args.max_regress:.0f}% allowed)"
        )
        return 1
    if ratio < 1.0:
        print(f"OK: {100.0 * (1.0 - ratio):.1f}% faster than baseline")
    else:
        print(f"OK: within budget (+{100.0 * (ratio - 1.0):.1f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
