// Topology inspector: generate a deployment (or load a saved instance),
// build the backbone, print a quality report, and export the structures
// in any combination of formats for downstream tooling.
//
//   $ ./inspect gen [n] [side] [radius] [seed]     # report + save instance
//   $ ./inspect load <file.gsg>                    # report a saved instance
//   $ ./inspect export <file.gsg> <dot|svg|gsg> <out_prefix>
//
// The instance format is the plain-text "gsg" format of io/serialize.h;
// exported structures are the UDG plus the six backbone topologies.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "core/backbone.h"
#include "core/report.h"
#include "core/workload.h"
#include "graph/planarity.h"
#include "io/serialize.h"
#include "io/svg.h"
#include "io/table.h"
#include "proximity/udg.h"

using namespace geospanner;

namespace {

void report(const graph::GeometricGraph& udg) {
    // Recover the radius from the longest edge (exact enough for the
    // stretch-measurement cutoff).
    double radius = 0.0;
    for (const auto& [u, v] : udg.edges()) {
        radius = std::max(radius, udg.edge_length(u, v));
    }
    const core::Backbone bb = core::build_backbone(udg, {core::Engine::kCentralized});
    io::Table table({"topology", "deg avg", "deg max", "len avg", "len max", "hop avg",
                     "hop max", "edges", "planar"});
    const auto add = [&](const char* name, const graph::GeometricGraph& topo,
                         bool spanning) {
        const auto r = core::measure_topology(name, udg, topo, spanning, radius);
        table.begin_row().cell(std::string(name)).cell(r.degree.avg).cell(r.degree.max);
        if (spanning) {
            table.cell(r.length.avg).cell(r.length.max).cell(r.hops.avg).cell(r.hops.max);
        } else {
            table.dash().dash().dash().dash();
        }
        table.cell(r.edges);
        table.cell(graph::is_plane_embedding(topo) ? std::string("yes") : std::string("no"));
    };
    add("UDG", udg, true);
    add("CDS", bb.cds, false);
    add("CDS'", bb.cds_prime, true);
    add("ICDS", bb.icds, false);
    add("ICDS'", bb.icds_prime, true);
    add("LDel(ICDS)", bb.ldel_icds, false);
    add("LDel(ICDS')", bb.ldel_icds_prime, true);
    std::cout << table.str();
}

int export_instance(const std::string& path, const std::string& format,
                    const std::string& prefix) {
    const auto udg = io::load_graph(path);
    if (!udg) {
        std::cerr << "cannot load " << path << '\n';
        return 1;
    }
    const core::Backbone bb = core::build_backbone(*udg, {core::Engine::kCentralized});
    const std::pair<const char*, const graph::GeometricGraph*> topos[] = {
        {"udg", &*udg},           {"cds", &bb.cds},
        {"cds_prime", &bb.cds_prime}, {"icds", &bb.icds},
        {"icds_prime", &bb.icds_prime}, {"ldel_icds", &bb.ldel_icds},
        {"ldel_icds_prime", &bb.ldel_icds_prime}};
    for (const auto& [name, topo] : topos) {
        const std::string out = prefix + "_" + name + "." + format;
        bool ok = false;
        if (format == "gsg") {
            ok = io::save_graph(out, *topo);
        } else if (format == "dot") {
            std::ofstream file(out);
            file << io::to_dot(*topo, name);
            ok = static_cast<bool>(file);
        } else if (format == "svg") {
            std::vector<io::NodeClass> classes(udg->node_count(), io::NodeClass::kPlain);
            for (graph::NodeId v = 0; v < udg->node_count(); ++v) {
                if (bb.cluster.is_dominator(v)) {
                    classes[v] = io::NodeClass::kDominator;
                } else if (bb.is_connector[v]) {
                    classes[v] = io::NodeClass::kConnector;
                }
            }
            io::SvgStyle style;
            style.title = name;
            ok = io::write_svg(out, *topo, classes, style);
        } else {
            std::cerr << "unknown format " << format << " (use dot|svg|gsg)\n";
            return 1;
        }
        if (!ok) {
            std::cerr << "failed to write " << out << '\n';
            return 1;
        }
        std::cout << "wrote " << out << '\n';
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    const std::string mode = argc > 1 ? argv[1] : "gen";
    if (mode == "gen") {
        core::WorkloadConfig config;
        config.node_count = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 100;
        config.side = argc > 3 ? std::strtod(argv[3], nullptr) : 250.0;
        config.radius = argc > 4 ? std::strtod(argv[4], nullptr) : 60.0;
        config.seed = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 1;
        const auto udg = core::random_connected_udg(config);
        if (!udg) {
            std::cerr << "no connected instance at this density\n";
            return 1;
        }
        const std::string out = "instance.gsg";
        if (!io::save_graph(out, *udg)) {
            std::cerr << "failed to save " << out << '\n';
            return 1;
        }
        std::cout << "saved " << out << "\n\n";
        report(*udg);
        return 0;
    }
    if (mode == "load" && argc > 2) {
        const auto udg = io::load_graph(argv[2]);
        if (!udg) {
            std::cerr << "cannot load " << argv[2] << '\n';
            return 1;
        }
        report(*udg);
        return 0;
    }
    if (mode == "export" && argc > 4) {
        return export_instance(argv[2], argv[3], argv[4]);
    }
    std::cerr << "usage:\n  inspect gen [n] [side] [radius] [seed]\n"
                 "  inspect load <file.gsg>\n"
                 "  inspect export <file.gsg> <dot|svg|gsg> <out_prefix>\n";
    return 2;
}
