// Geographic routing on the planar backbone: compares greedy, GFG on the
// planarized localized Delaunay graph, and hierarchical dominating-set
// routing against the true shortest paths, over many random source/
// destination pairs.
//
//   $ ./routing_demo [n] [side] [radius] [seed] [pairs]
#include <cstdlib>
#include <iostream>

#include "core/backbone.h"
#include "core/workload.h"
#include "graph/shortest_paths.h"
#include "io/table.h"
#include "proximity/ldel.h"
#include "random/rng.h"
#include "routing/backbone_routing.h"
#include "routing/router.h"

using namespace geospanner;

int main(int argc, char** argv) {
    core::WorkloadConfig config;
    config.node_count = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 150;
    config.side = argc > 2 ? std::strtod(argv[2], nullptr) : 300.0;
    config.radius = argc > 3 ? std::strtod(argv[3], nullptr) : 42.0;
    config.seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 99;
    const std::size_t pairs = argc > 5 ? std::strtoul(argv[5], nullptr, 10) : 400;

    const auto udg = core::random_connected_udg(config);
    if (!udg) {
        std::cerr << "no connected instance at this density\n";
        return 1;
    }
    const core::Backbone bb = core::build_backbone(*udg, {core::Engine::kCentralized});
    const auto pldel = proximity::build_pldel(*udg);

    const routing::Router greedy_router(*udg);       // Greedy over the raw UDG.
    const routing::Router pldel_router(pldel);       // GFG over planar PLDel(V).
    const routing::BackboneRouter backbone_router(bb, *udg);

    struct Tally {
        std::size_t delivered = 0;
        double hop_stretch_sum = 0.0;
        double len_stretch_sum = 0.0;
    };
    Tally greedy_tally;
    Tally gfg_tally;
    Tally backbone_tally;

    rnd::Xoshiro256 rng(config.seed ^ 0xabcdef);
    const auto n = static_cast<graph::NodeId>(udg->node_count());
    std::size_t measured = 0;
    for (std::size_t i = 0; i < pairs; ++i) {
        const auto s = static_cast<graph::NodeId>(rng.below(n));
        const auto t = static_cast<graph::NodeId>(rng.below(n));
        if (s == t) continue;
        ++measured;
        const auto opt_hops = graph::bfs_hops(*udg, s)[t];
        const auto opt_len = graph::dijkstra_lengths(*udg, s)[t];

        const auto account = [&](Tally& tally, const routing::RouteResult& r) {
            if (!r.delivered) return;
            ++tally.delivered;
            tally.hop_stretch_sum += static_cast<double>(r.hops()) / opt_hops;
            tally.len_stretch_sum += r.length(*udg) / opt_len;
        };
        account(greedy_tally, greedy_router.greedy(s, t));
        account(gfg_tally, pldel_router.gfg(s, t));
        account(backbone_tally, backbone_router.route(s, t));
    }

    std::cout << "routing_demo: n=" << n << " radius=" << config.radius << " pairs="
              << measured << "\n\n";
    io::Table table({"protocol", "delivery %", "avg hop stretch", "avg len stretch"});
    const auto row = [&](const char* name, const Tally& tally) {
        table.begin_row().cell(std::string(name));
        table.cell(100.0 * static_cast<double>(tally.delivered) /
                   static_cast<double>(measured), 1);
        if (tally.delivered > 0) {
            table.cell(tally.hop_stretch_sum / static_cast<double>(tally.delivered));
            table.cell(tally.len_stretch_sum / static_cast<double>(tally.delivered));
        } else {
            table.dash().dash();
        }
    };
    row("greedy on UDG", greedy_tally);
    row("GFG on PLDel(V)", gfg_tally);
    row("backbone (CDS + GFG on LDel(ICDS))", backbone_tally);
    std::cout << table.str();
    std::cout << "\nGFG and backbone routing deliver 100% by construction (planar,\n"
                 "connected substrates); greedy alone can stall at local minima.\n";
    return 0;
}
