// Sensor-network data collection (the paper's motivating scenario: "the
// data are typically sent to one specific node called sink").
//
// All nodes periodically report to a sink. Compares plain min-hop
// routing on the full UDG against dominating-set backbone routing on the
// planar LDel(ICDS) spanner, under the packet-level store-and-forward
// simulator: delivery, latency, queue pressure, and how the forwarding
// load concentrates on the backbone.
//
//   $ ./sensor_sink [n] [side] [radius] [packets] [seed]
#include <cstdlib>
#include <iostream>

#include "core/backbone.h"
#include "core/workload.h"
#include "graph/shortest_paths.h"
#include "io/table.h"
#include "netsim/simulator.h"
#include "routing/backbone_routing.h"

using namespace geospanner;

int main(int argc, char** argv) {
    core::WorkloadConfig config;
    config.node_count = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 120;
    config.side = argc > 2 ? std::strtod(argv[2], nullptr) : 280.0;
    config.radius = argc > 3 ? std::strtod(argv[3], nullptr) : 60.0;
    const std::size_t packets = argc > 4 ? std::strtoul(argv[4], nullptr, 10) : 2000;
    config.seed = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 404;

    const auto udg = core::random_connected_udg(config);
    if (!udg) {
        std::cerr << "no connected instance at this density\n";
        return 1;
    }
    const core::Backbone bb = core::build_backbone(*udg, {core::Engine::kCentralized});
    const routing::BackboneRouter backbone_router(bb, *udg);

    // The sink: the node closest to the region center (a realistic
    // gateway placement).
    graph::NodeId sink = 0;
    const geom::Point center{config.side / 2, config.side / 2};
    for (graph::NodeId v = 1; v < udg->node_count(); ++v) {
        if (geom::squared_distance(udg->point(v), center) <
            geom::squared_distance(udg->point(sink), center)) {
            sink = v;
        }
    }

    const auto traffic =
        netsim::sink_traffic(udg->node_count(), sink, packets, /*per_slot=*/3, 77);

    const netsim::RouteFn udg_routes = [&](graph::NodeId s, graph::NodeId t) {
        return graph::shortest_hop_path(*udg, s, t);
    };
    const netsim::RouteFn backbone_routes = [&](graph::NodeId s, graph::NodeId t) {
        return backbone_router.route(s, t).path;
    };

    netsim::Config sim_config;
    sim_config.queue_capacity = 64;
    const auto udg_stats =
        netsim::run_simulation(udg->node_count(), udg_routes, traffic, sim_config);
    const auto bb_stats =
        netsim::run_simulation(udg->node_count(), backbone_routes, traffic, sim_config);

    std::cout << "sensor_sink: n=" << udg->node_count() << " sink=" << sink
              << " packets=" << packets << "\n\n";
    io::Table table({"scheme", "delivered", "avg latency", "max latency", "max queue",
                     "tx total", "energy (beta=2)", "max load share"});
    const auto row = [&](const char* name, const netsim::Stats& s,
                         const graph::GeometricGraph& topo) {
        std::size_t tx = 0;
        for (const std::size_t t : s.transmissions) tx += t;
        table.begin_row()
            .cell(std::string(name))
            .cell(s.delivered)
            .cell(s.avg_latency())
            .cell(s.max_latency)
            .cell(s.max_queue_depth)
            .cell(tx)
            .cell(netsim::total_energy(s, topo, 2.0), 0)
            .cell(s.max_load_share());
    };
    row("min-hop on UDG", udg_stats, *udg);
    row("backbone LDel(ICDS)", bb_stats, bb.ldel_icds_prime);
    std::cout << table.str()
              << "\nBackbone routing pays slightly longer paths (more transmissions,\n"
                 "higher latency) in exchange for the planar constant-degree\n"
                 "substrate that keeps routing state local; with sink traffic the\n"
                 "bottleneck is the sink's neighborhood under either scheme.\n";
    return 0;
}
