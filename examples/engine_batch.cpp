// Engine demo: build a whole batch of backbone instances on a thread
// pool, then rebuild one of them sequentially to show the engine's
// determinism contract in action.
//
//   $ ./engine_batch [instances] [n] [threads]
//
// The batch API generates each workload and runs the full UDG ->
// clustering -> connectors -> ICDS -> LDel pipeline per instance, with
// instances claimed by pool lanes; per-instance results are identical to
// what a standalone sequential build produces, whatever the thread count.
#include <cstdlib>
#include <iostream>

#include "core/backbone.h"
#include "core/workload.h"
#include "engine/batch.h"
#include "engine/engine.h"
#include "io/table.h"

using namespace geospanner;

int main(int argc, char** argv) {
    const std::size_t instances = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6;
    const std::size_t n = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 400;
    const std::size_t threads = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 0;
    if (instances == 0 || n == 0) {
        std::cerr << "usage: engine_batch [instances>0] [n>0] [threads]\n";
        return 1;
    }

    engine::SpannerEngine eng({.threads = threads});
    std::cout << "engine batch: " << instances << " instances of n=" << n << " on "
              << eng.thread_count() << " threads\n\n";

    std::vector<core::WorkloadConfig> configs(instances);
    for (std::size_t i = 0; i < instances; ++i) {
        configs[i].node_count = n;
        configs[i].side = 250.0;
        configs[i].radius = 60.0;
        configs[i].seed = 1000 + i;
    }

    const auto results = engine::build_batch(eng, configs);

    io::Table table({"seed", "udg_edges", "backbone", "ldel_edges", "total_ms"});
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto& r = results[i];
        if (!r.udg) {
            std::cout << "seed " << configs[i].seed << ": no connected instance\n";
            continue;
        }
        table.begin_row()
            .cell(configs[i].seed)
            .cell(r.udg->edge_count())
            .cell(r.backbone.backbone_size())
            .cell(r.backbone.ldel_icds.edge_count())
            .cell(r.stats.total_ms(), 1);
    }
    std::cout << table.str() << '\n';

    // Determinism check: the first instance, rebuilt without the engine.
    if (!results.empty() && results.front().udg) {
        const auto udg = core::random_connected_udg(configs.front());
        const auto sequential = core::build_backbone(*udg, {core::Engine::kCentralized});
        const bool same =
            sequential.ldel_icds == results.front().backbone.ldel_icds &&
            sequential.cds == results.front().backbone.cds;
        std::cout << "parallel batch result == sequential rebuild: "
                  << (same ? "yes" : "NO (bug!)") << "\n\n";
    }

    // Per-stage profile of one instance built directly.
    const auto points = core::uniform_points(configs.front());
    const auto result = eng.build(points, configs.front().radius);
    std::cout << "stage profile (n=" << n << ", threads=" << eng.thread_count()
              << "):\n"
              << result.stats.table();
    return 0;
}
