// Sharded-engine demo: build one large world with TileShardedEngine,
// rebuild it monolithically, and show the merge is edge-for-edge
// identical while the work was done per tile.
//
//   $ ./engine_sharded [n] [tiles] [threads]
//
// Prints the sharded pipeline's stage breakdown (partition → udg →
// clustering → shards → merge), the per-tile owned/region sizes and
// wall times, and the equality verdict against the monolithic build.
#include <cstdlib>
#include <iostream>

#include "core/backbone.h"
#include "core/workload.h"
#include "engine/engine.h"
#include "io/table.h"
#include "shard/tile_engine.h"

using namespace geospanner;

int main(int argc, char** argv) {
    const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20'000;
    const std::size_t tiles = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 16;
    const std::size_t threads = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 0;
    if (n == 0) {
        std::cerr << "usage: engine_sharded [n>0] [tiles] [threads]\n";
        return 1;
    }

    // Uniform deployment with expected UDG degree ~12 at unit radius.
    core::WorkloadConfig config;
    config.node_count = n;
    config.side = std::sqrt(static_cast<double>(n) * 3.14159265358979 / 12.0);
    config.seed = 7;
    const auto points = core::uniform_points(config);
    const double radius = 1.0;

    shard::ShardOptions options;
    options.threads = threads;
    options.tiles = tiles;
    shard::TileShardedEngine sharded(options);
    std::cout << "sharded build: n=" << n << ", ~" << tiles << " tiles, "
              << sharded.thread_count() << " threads, halo " << options.halo_hops
              << " hops\n\n";
    const shard::ShardBuildResult result = sharded.build(points, radius);
    std::cout << result.stats.table() << '\n';

    io::Table per_tile({"tile", "owned", "region", "wall_ms"});
    for (const shard::ShardStats& s : result.shards) {
        per_tile.begin_row()
            .cell(s.tile)
            .cell(s.owned)
            .cell(s.region)
            .cell(s.stats.total_ms(), 1);
    }
    std::cout << per_tile.str() << '\n';

    engine::SpannerEngine mono({.threads = threads});
    const engine::BuildResult reference = mono.build(points, radius);
    const bool identical =
        result.udg == reference.udg &&
        result.backbone.ldel_icds_prime == reference.backbone.ldel_icds_prime &&
        result.backbone.cds == reference.backbone.cds;
    std::cout << "udg edges: " << result.udg.edge_count()
              << ", backbone nodes: " << result.backbone.backbone_size()
              << ", LDel(ICDS') edges: " << result.backbone.ldel_icds_prime.edge_count()
              << '\n'
              << "matches monolithic build: " << (identical ? "yes" : "NO") << '\n';
    return identical ? 0 : 1;
}
