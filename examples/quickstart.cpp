// Quickstart: build the paper's planar backbone for a random wireless
// network and print what you got.
//
//   $ ./quickstart [n] [side] [radius] [seed]
//
// Walks the full pipeline: random connected UDG -> distributed
// clustering -> connector election -> induced backbone -> localized
// Delaunay planarization, then reports sizes, degrees, stretch factors,
// and per-node communication cost.
#include <cstdlib>
#include <iostream>

#include "core/backbone.h"
#include "core/report.h"
#include "core/workload.h"
#include "graph/metrics.h"
#include "graph/planarity.h"
#include "io/table.h"

using namespace geospanner;

int main(int argc, char** argv) {
    core::WorkloadConfig config;
    config.node_count = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 100;
    config.side = argc > 2 ? std::strtod(argv[2], nullptr) : 250.0;
    config.radius = argc > 3 ? std::strtod(argv[3], nullptr) : 60.0;
    config.seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 2002;

    std::cout << "geospanner quickstart: n=" << config.node_count
              << " side=" << config.side << " radius=" << config.radius
              << " seed=" << config.seed << "\n\n";

    const auto udg = core::random_connected_udg(config);
    if (!udg) {
        std::cerr << "could not generate a connected unit disk graph at this "
                     "density; increase the radius or node count\n";
        return 1;
    }

    // Build every backbone structure with the real distributed protocols.
    const core::Backbone bb = core::build_backbone(*udg, {core::Engine::kDistributed});

    std::size_t dominators = bb.cluster.dominator_count();
    std::size_t connectors = 0;
    for (const bool c : bb.is_connector) connectors += c ? 1 : 0;
    std::cout << "nodes: " << udg->node_count() << "  UDG edges: " << udg->edge_count()
              << "\nbackbone: " << dominators << " dominators + " << connectors
              << " connectors = " << bb.backbone_size() << " nodes\n"
              << "LDel(ICDS) planar: "
              << (graph::is_plane_embedding(bb.ldel_icds) ? "yes" : "NO (bug!)")
              << ", triangles kept: " << bb.ldel_triangles.size() << "\n\n";

    io::Table table({"topology", "deg avg", "deg max", "len avg", "len max", "hop avg",
                     "hop max", "edges"});
    const auto add_row = [&](const char* name, const graph::GeometricGraph& topo,
                             bool spanning) {
        // Stretch over pairs more than one transmission radius apart,
        // matching the paper's measurement convention.
        const auto r = core::measure_topology(name, *udg, topo, spanning, config.radius);
        table.begin_row().cell(std::string(name)).cell(r.degree.avg).cell(r.degree.max);
        if (spanning) {
            table.cell(r.length.avg).cell(r.length.max).cell(r.hops.avg).cell(r.hops.max);
        } else {
            table.dash().dash().dash().dash();
        }
        table.cell(r.edges);
    };
    add_row("UDG", *udg, true);
    add_row("CDS", bb.cds, false);
    add_row("CDS'", bb.cds_prime, true);
    add_row("ICDS", bb.icds, false);
    add_row("ICDS'", bb.icds_prime, true);
    add_row("LDel(ICDS)", bb.ldel_icds, false);
    add_row("LDel(ICDS')", bb.ldel_icds_prime, true);
    std::cout << table.str() << '\n';

    std::cout << "communication cost per node (broadcasts):\n"
              << "  CDS:        max " << core::MessageStats::max_of(bb.messages.after_cds)
              << ", avg " << core::MessageStats::avg_of(bb.messages.after_cds) << "\n"
              << "  ICDS:       max " << core::MessageStats::max_of(bb.messages.after_icds)
              << ", avg " << core::MessageStats::avg_of(bb.messages.after_icds) << "\n"
              << "  LDel(ICDS): max " << core::MessageStats::max_of(bb.messages.after_ldel)
              << ", avg " << core::MessageStats::avg_of(bb.messages.after_ldel) << "\n";
    return 0;
}
