// Backend demo: build every registered spanner backend on one shared
// UDG, print a side-by-side comparison (edges, degree, far-pair stretch,
// build time), and audit each spanner against the bounds its backend
// claims — the claimed-bounds contract in one screen.
//
//   $ ./backend_compare [n] [radius] [seed]
//
// Each backend advertises its own guarantees (plane or not, degree cap,
// stretch constants); the audit column shows that every construction is
// checked against exactly what it promises, never against another
// backend's promises.
#include <cstdlib>
#include <chrono>
#include <iostream>

#include "backends/backend.h"
#include "core/workload.h"
#include "graph/metrics.h"
#include "io/table.h"
#include "verify/backend_audit.h"

using namespace geospanner;

int main(int argc, char** argv) {
    const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 300;
    const double radius = argc > 2 ? std::strtod(argv[2], nullptr) : 60.0;
    const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;
    if (n == 0 || radius <= 0.0) {
        std::cerr << "usage: backend_compare [n>0] [radius>0] [seed]\n";
        return 1;
    }

    core::WorkloadConfig config;
    config.node_count = n;
    config.side = 250.0;
    config.radius = radius;
    config.seed = seed;
    const auto udg = core::random_connected_udg(config);
    if (!udg) {
        std::cerr << "could not draw a connected UDG at n=" << n
                  << ", radius=" << radius << " (raise either)\n";
        return 1;
    }
    std::cout << "shared instance: n=" << n << ", radius=" << radius << ", "
              << udg->edge_count() << " UDG edges\n\n";

    io::Table table({"backend", "edges", "deg_max", "deg_avg", "len max", "hop max",
                     "plane?", "build_ms", "audit"});
    bool all_pass = true;
    for (const auto& name : backends::registered_backends()) {
        auto backend = backends::make_backend(name);
        const auto start = std::chrono::steady_clock::now();
        const auto result = backend->build(*udg, radius);
        const double ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - start)
                              .count();

        const auto degrees = graph::degree_stats(result.spanner);
        const auto len = graph::length_stretch(*udg, result.spanner, radius);
        const auto hop = graph::hop_stretch(*udg, result.spanner, radius);

        const verify::BackendClaims claims = backend->claims();
        verify::AuditOptions options;
        options.radius = radius;
        const auto audit = verify::audit_backend(*udg, result.spanner, claims, options);
        all_pass = all_pass && audit.pass();

        table.begin_row()
            .cell(name)
            .cell(result.spanner.edge_count())
            .cell(degrees.max)
            .cell(degrees.avg)
            .cell(len.max)
            .cell(hop.max)
            .cell(claims.plane ? "yes" : "no")
            .cell(ms, 1)
            .cell(audit.pass() ? "pass" : "FAIL");

        std::cout << name << " claims:";
        if (claims.plane) std::cout << " plane;";
        if (claims.max_degree > 0) std::cout << " degree<=" << claims.max_degree << ";";
        if (claims.max_length_stretch > 0.0) {
            std::cout << " far-pair length stretch<=" << claims.max_length_stretch
                      << ";";
        }
        if (claims.hop_stretch_factor > 0.0) {
            std::cout << " hops<=" << claims.hop_stretch_factor << "h+"
                      << claims.hop_stretch_offset << ";";
        }
        std::cout << " connected=" << (claims.connected ? "yes" : "no") << '\n';
    }

    std::cout << '\n' << table.str()
              << "\n(stretch over pairs more than one radius apart; each audit\n"
                 "checks only the claims the backend itself advertises)\n";
    return all_pass ? 0 : 1;
}
