// Mobility: the paper argues the backbone only needs updating when a
// link it actually uses breaks, and leaves dynamic maintenance as future
// work. This demo runs the standard random-waypoint mobility model and
// the epoch-driven maintenance policy (src/mobility): per epoch, the
// backbone survives unless one of its used links stretched beyond the
// transmission range, in which case it is rebuilt with the distributed
// protocols (broadcast cost accounted).
//
//   $ ./mobility [n] [side] [radius] [epochs] [max_speed] [seed]
#include <cstdlib>
#include <iostream>

#include "core/workload.h"
#include "io/table.h"
#include "mobility/maintenance.h"
#include "mobility/waypoint.h"

using namespace geospanner;

int main(int argc, char** argv) {
    core::WorkloadConfig config;
    config.node_count = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 80;
    config.side = argc > 2 ? std::strtod(argv[2], nullptr) : 250.0;
    config.radius = argc > 3 ? std::strtod(argv[3], nullptr) : 60.0;
    const std::size_t epochs = argc > 4 ? std::strtoul(argv[4], nullptr, 10) : 300;
    const double max_speed = argc > 5 ? std::strtod(argv[5], nullptr) : 1.5;
    config.seed = argc > 6 ? std::strtoull(argv[6], nullptr, 10) : 31;

    const auto udg = core::random_connected_udg(config);
    if (!udg) {
        std::cerr << "no connected instance at this density\n";
        return 1;
    }

    std::cout << "mobility: n=" << config.node_count << " radius=" << config.radius
              << " epochs=" << epochs << "\n\n";
    io::Table table({"max speed", "intact epochs %", "rebuilds", "longest lifetime",
                     "broadcasts/rebuild"});
    for (const double speed : {max_speed / 4, max_speed / 2, max_speed}) {
        mobility::WaypointConfig wp;
        wp.side = config.side;
        wp.min_speed = speed / 3.0;
        wp.max_speed = speed;
        wp.pause = 5.0;
        wp.seed = config.seed ^ 0x5eed;

        mobility::RandomWaypointModel model(udg->points(), wp);
        mobility::MaintainedBackbone mb(udg->points(), config.radius,
                                        {core::Engine::kDistributed});
        for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
            model.advance(1.0);
            mb.update(model.positions());
        }
        const auto& stats = mb.stats();
        table.begin_row()
            .cell(speed)
            .cell(100.0 * static_cast<double>(stats.intact_epochs) /
                      static_cast<double>(stats.epochs),
                  1)
            .cell(stats.rebuilds)
            .cell(stats.longest_lifetime)
            .cell(stats.broadcasts_per_rebuild());
    }
    std::cout << table.str()
              << "\nslower movement -> backbones survive many epochs untouched; the\n"
                 "logical (planar) topology stays valid while its links hold, so\n"
                 "maintenance cost scales with link-breakage rate, not with motion\n"
                 "per se — the paper's central mobility argument.\n";
    return 0;
}
