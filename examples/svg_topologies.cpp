// Reproduces the paper's Figures 6 and 7: renders one unit-disk-graph
// instance and every derived topology (RNG, GG, LDel, CDS, CDS', ICDS,
// ICDS', LDel(ICDS), LDel(ICDS')) as SVG files.
//
//   $ ./svg_topologies [output_dir] [n] [side] [radius] [seed]
//
// Dominators are drawn as large red squares, connectors as blue squares,
// dominatees as grey circles (the legend of the paper's Figure 3).
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "core/backbone.h"
#include "core/workload.h"
#include "io/svg.h"
#include "proximity/classic.h"
#include "proximity/ldel.h"

using namespace geospanner;

int main(int argc, char** argv) {
    const std::string out_dir = argc > 1 ? argv[1] : "topology_svgs";
    core::WorkloadConfig config;
    config.node_count = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 100;
    config.side = argc > 3 ? std::strtod(argv[3], nullptr) : 250.0;
    config.radius = argc > 4 ? std::strtod(argv[4], nullptr) : 60.0;
    config.seed = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 6;

    const auto udg = core::random_connected_udg(config);
    if (!udg) {
        std::cerr << "no connected instance at this density\n";
        return 1;
    }
    const core::Backbone bb = core::build_backbone(*udg, {core::Engine::kCentralized});

    std::vector<io::NodeClass> classes(udg->node_count(), io::NodeClass::kPlain);
    for (graph::NodeId v = 0; v < udg->node_count(); ++v) {
        if (bb.cluster.is_dominator(v)) {
            classes[v] = io::NodeClass::kDominator;
        } else if (bb.is_connector[v]) {
            classes[v] = io::NodeClass::kConnector;
        }
    }

    std::filesystem::create_directories(out_dir);
    const auto emit = [&](const std::string& name, const graph::GeometricGraph& g) {
        io::SvgStyle style;
        style.title = name;
        const std::string path = out_dir + "/" + name + ".svg";
        if (!io::write_svg(path, g, classes, style)) {
            std::cerr << "failed to write " << path << '\n';
            std::exit(1);
        }
        std::cout << "wrote " << path << "  (" << g.edge_count() << " edges)\n";
    };

    emit("udg", *udg);                                  // Figure 6.
    emit("rng", proximity::build_rng(*udg));            // Figure 7 panels.
    emit("gabriel", proximity::build_gabriel(*udg));
    emit("udel", proximity::build_udel(*udg));
    emit("ldel", proximity::build_pldel(*udg));
    emit("yao", proximity::build_yao(*udg));
    emit("cds", bb.cds);
    emit("cds_prime", bb.cds_prime);
    emit("icds", bb.icds);
    emit("icds_prime", bb.icds_prime);
    emit("ldel_icds", bb.ldel_icds);
    emit("ldel_icds_prime", bb.ldel_icds_prime);
    return 0;
}
